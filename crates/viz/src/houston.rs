//! Apollo/Houston — interactive client-server parallel rendering.
//!
//! The Rocketeer suite contains "an interactive tool with parallel
//! processing in a client-server mode called Apollo/Houston" (§4.1).
//! This module is that third tool: a [`HoustonServer`] owning worker
//! threads, each with **its own GODIVA database** over a partition of
//! the mesh blocks (§3.3: "Each processor has its own database, which
//! manages its local data, and there is no need for any communication
//! between the GBO objects on different processors"), answering render
//! requests from an interactive client (Apollo).
//!
//! A request is served in two phases, the standard sort-last parallel
//! rendering protocol:
//!
//! 1. every worker loads its blocks (GODIVA units, cached with
//!    `finish_unit` across requests — revisits are hits) and reports its
//!    local scalar range;
//! 2. the server broadcasts the merged range (so all workers colour
//!    identically), each worker rasterizes its blocks into a private
//!    framebuffer, and the server depth-composites the partial images.

use crate::backend::{GodivaBackend, GodivaBackendOptions, SnapshotSource};
use crate::camera::Camera;
use crate::color::{ColorMap, ColorScheme};
use crate::error::{VizError, VizResult};
use crate::raster::{rasterize, Framebuffer};
use crate::spec::GraphicsOp;
use crate::voyager::apply_op;
use crossbeam::channel::{unbounded, Receiver, Sender};
use godiva_genx::GenxConfig;
use godiva_platform::Storage;
use godiva_sdf::ReadOptions;
use std::sync::Arc;

/// A render request from the client.
#[derive(Debug, Clone)]
pub struct RenderRequest {
    /// Snapshot to render.
    pub snapshot: usize,
    /// Graphics operations to apply (each names its variable).
    pub ops: Vec<GraphicsOp>,
    /// Output image size.
    pub width: usize,
    /// Output image height.
    pub height: usize,
}

type RangeReply = Receiver<VizResult<Option<(f64, f64)>>>;

enum WorkerMsg {
    Range {
        snapshot: usize,
        var: String,
        reply: Sender<VizResult<Option<(f64, f64)>>>,
    },
    Render {
        request: RenderRequest,
        ranges: Vec<(f64, f64)>,
        reply: Sender<VizResult<Framebuffer>>,
    },
    Shutdown,
}

struct Worker {
    tx: Sender<WorkerMsg>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// The parallel render server.
pub struct HoustonServer {
    workers: Vec<Worker>,
    genx: GenxConfig,
}

fn worker_loop(
    rx: Receiver<WorkerMsg>,
    storage: Arc<dyn Storage>,
    genx: GenxConfig,
    vars: Vec<String>,
    blocks: Vec<usize>,
    mem_limit: u64,
) {
    let mut options = GodivaBackendOptions::interactive(vars, mem_limit);
    options.block_subset = Some(blocks);
    let mut backend = GodivaBackend::new(storage, genx.clone(), ReadOptions::new(), options);
    let all: Vec<usize> = (0..genx.snapshots).collect();
    // Interactive mode: units are read on demand (blocking) and cached.
    if backend.begin_run(&all).is_err() {
        return;
    }
    let bounds = (
        [-genx.r_outer, -genx.r_outer, 0.0],
        [genx.r_outer, genx.r_outer, genx.height],
    );
    let camera = Camera::framing(bounds.0, bounds.1);
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Shutdown => break,
            WorkerMsg::Range {
                snapshot,
                var,
                reply,
            } => {
                let result = backend.load_pass(snapshot, &var).map(|data| {
                    let mut range: Option<(f64, f64)> = None;
                    for d in &data {
                        for &v in d.scalar.iter().filter(|v| v.is_finite()) {
                            range = Some(match range {
                                None => (v, v),
                                Some((lo, hi)) => (lo.min(v), hi.max(v)),
                            });
                        }
                    }
                    range
                });
                let _ = reply.send(result);
            }
            WorkerMsg::Render {
                request,
                ranges,
                reply,
            } => {
                let mut fb = Framebuffer::new(request.width, request.height);
                let mut render = || -> VizResult<()> {
                    for (op, &(lo, hi)) in request.ops.iter().zip(&ranges) {
                        let data = backend.load_pass(request.snapshot, op.var())?;
                        let cmap = ColorMap::new(lo, hi, ColorScheme::Rainbow);
                        for d in &data {
                            let soup = apply_op(op, d, bounds)?;
                            rasterize(&mut fb, &camera, &cmap, &soup);
                        }
                    }
                    // Keep the snapshot cached for revisits.
                    backend.end_snapshot(request.snapshot)?;
                    Ok(())
                };
                let result = render().map(|()| fb);
                let _ = reply.send(result);
            }
        }
    }
}

impl HoustonServer {
    /// Start a server with `n_workers` worker databases over a
    /// round-robin block partition. `vars` is the set of variables the
    /// client may request.
    pub fn start(
        storage: Arc<dyn Storage>,
        genx: GenxConfig,
        vars: Vec<String>,
        n_workers: usize,
        mem_limit_per_worker: u64,
    ) -> VizResult<HoustonServer> {
        if n_workers == 0 {
            return Err(VizError::Pipeline("need at least one worker".into()));
        }
        let workers = (0..n_workers)
            .map(|w| {
                let (tx, rx) = unbounded();
                let storage = storage.clone();
                let genx2 = genx.clone();
                let vars = vars.clone();
                let blocks: Vec<usize> = (0..genx.blocks).filter(|b| b % n_workers == w).collect();
                let handle = std::thread::Builder::new()
                    .name(format!("houston-{w}"))
                    .spawn(move || {
                        worker_loop(rx, storage, genx2, vars, blocks, mem_limit_per_worker)
                    })
                    .expect("spawn houston worker");
                Worker {
                    tx,
                    handle: Some(handle),
                }
            })
            .collect();
        Ok(HoustonServer { workers, genx })
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Serve one render request: two-phase (range, then render +
    /// composite). Blocks until the image is complete.
    pub fn render(&self, request: RenderRequest) -> VizResult<Framebuffer> {
        if request.snapshot >= self.genx.snapshots {
            return Err(VizError::Pipeline(format!(
                "snapshot {} out of range (dataset has {})",
                request.snapshot, self.genx.snapshots
            )));
        }
        // Phase 1: one global colour range per op.
        let mut ranges = Vec::with_capacity(request.ops.len());
        for op in &request.ops {
            let replies: Vec<RangeReply> = self
                .workers
                .iter()
                .map(|w| {
                    let (tx, rx) = unbounded();
                    w.tx.send(WorkerMsg::Range {
                        snapshot: request.snapshot,
                        var: op.var().to_string(),
                        reply: tx,
                    })
                    .map_err(|_| VizError::Pipeline("worker died".into()))?;
                    Ok::<_, VizError>(rx)
                })
                .collect::<VizResult<_>>()?;
            let mut merged: Option<(f64, f64)> = None;
            for rx in replies {
                let local = rx
                    .recv()
                    .map_err(|_| VizError::Pipeline("worker died".into()))??;
                if let Some((lo, hi)) = local {
                    merged = Some(match merged {
                        None => (lo, hi),
                        Some((a, b)) => (a.min(lo), b.max(hi)),
                    });
                }
            }
            let (lo, hi) = merged.unwrap_or((0.0, 1.0));
            ranges.push(if hi > lo { (lo, hi) } else { (lo, lo + 1.0) });
        }
        // Phase 2: parallel render, sort-last composite.
        let replies: Vec<Receiver<VizResult<Framebuffer>>> = self
            .workers
            .iter()
            .map(|w| {
                let (tx, rx) = unbounded();
                w.tx.send(WorkerMsg::Render {
                    request: request.clone(),
                    ranges: ranges.clone(),
                    reply: tx,
                })
                .map_err(|_| VizError::Pipeline("worker died".into()))?;
                Ok::<_, VizError>(rx)
            })
            .collect::<VizResult<_>>()?;
        let mut composite: Option<Framebuffer> = None;
        for rx in replies {
            let partial = rx
                .recv()
                .map_err(|_| VizError::Pipeline("worker died".into()))??;
            composite = Some(match composite {
                None => partial,
                Some(mut fb) => {
                    fb.merge_nearer(&partial);
                    fb
                }
            });
        }
        Ok(composite.expect("at least one worker"))
    }

    /// Stop all workers and wait for them to exit.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        for w in &self.workers {
            let _ = w.tx.send(WorkerMsg::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for HoustonServer {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use godiva_platform::MemFs;

    fn dataset() -> (Arc<dyn Storage>, GenxConfig) {
        let fs = Arc::new(MemFs::new());
        let config = GenxConfig::tiny();
        godiva_genx::generate(fs.as_ref(), &config).unwrap();
        (fs as Arc<dyn Storage>, config)
    }

    fn simple_request(snapshot: usize) -> RenderRequest {
        RenderRequest {
            snapshot,
            ops: vec![GraphicsOp::Surface {
                var: "stress_avg".into(),
            }],
            width: 96,
            height: 72,
        }
    }

    fn serial_reference(
        storage: Arc<dyn Storage>,
        genx: &GenxConfig,
        request: &RenderRequest,
    ) -> Framebuffer {
        // One worker == serial rendering; use it as ground truth.
        let server = HoustonServer::start(
            storage,
            genx.clone(),
            vec!["stress_avg".into(), "velocity".into()],
            1,
            64 << 20,
        )
        .unwrap();
        server.render(request.clone()).unwrap()
    }

    #[test]
    fn parallel_compositing_matches_serial() {
        let (fs, genx) = dataset();
        let request = simple_request(0);
        let reference = serial_reference(fs.clone(), &genx, &request);
        for workers in [2, 3] {
            let server = HoustonServer::start(
                fs.clone(),
                genx.clone(),
                vec!["stress_avg".into(), "velocity".into()],
                workers,
                64 << 20,
            )
            .unwrap();
            let fb = server.render(request.clone()).unwrap();
            assert_eq!(
                fb.checksum(),
                reference.checksum(),
                "{workers}-worker composite differs from serial"
            );
            server.shutdown();
        }
    }

    #[test]
    fn revisits_are_cached_per_worker() {
        let (fs, genx) = dataset();
        let server =
            HoustonServer::start(fs, genx, vec!["stress_avg".into()], 2, 64 << 20).unwrap();
        let a = server.render(simple_request(0)).unwrap();
        let b = server.render(simple_request(1)).unwrap();
        let a2 = server.render(simple_request(0)).unwrap();
        assert_eq!(a.checksum(), a2.checksum(), "revisit renders identically");
        assert_ne!(a.checksum(), b.checksum(), "snapshots differ");
    }

    #[test]
    fn multi_op_requests_work() {
        let (fs, genx) = dataset();
        let server = HoustonServer::start(
            fs,
            genx,
            vec!["stress_avg".into(), "velocity".into()],
            2,
            64 << 20,
        )
        .unwrap();
        let fb = server
            .render(RenderRequest {
                snapshot: 1,
                ops: vec![
                    GraphicsOp::Surface {
                        var: "stress_avg".into(),
                    },
                    GraphicsOp::Isosurface {
                        var: "velocity".into(),
                        fraction: 0.5,
                    },
                ],
                width: 64,
                height: 64,
            })
            .unwrap();
        assert!(fb.covered_pixels() > 0);
    }

    #[test]
    fn bad_requests_are_errors() {
        let (fs, genx) = dataset();
        let snapshots = genx.snapshots;
        let server =
            HoustonServer::start(fs, genx, vec!["stress_avg".into()], 2, 64 << 20).unwrap();
        assert!(server.render(simple_request(snapshots + 5)).is_err());
        let err = server.render(RenderRequest {
            snapshot: 0,
            ops: vec![GraphicsOp::Surface {
                var: "not_a_variable".into(),
            }],
            width: 32,
            height: 32,
        });
        assert!(err.is_err());
    }

    #[test]
    fn zero_workers_rejected_and_drop_is_clean() {
        let (fs, genx) = dataset();
        assert!(HoustonServer::start(fs.clone(), genx.clone(), vec![], 0, 1 << 20).is_err());
        let server =
            HoustonServer::start(fs, genx, vec!["stress_avg".into()], 3, 64 << 20).unwrap();
        assert_eq!(server.workers(), 3);
        drop(server); // must join cleanly
    }
}
