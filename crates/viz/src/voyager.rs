//! The Voyager batch driver.
//!
//! §4.1: *"Voyager is a command line tool that takes as arguments a
//! camera position file, a graphics operations file, and a list of HDF
//! files to process"* and renders one image per time-step snapshot.
//! [`run_voyager`] is that loop, instrumented the way §4.2 measures it:
//!
//! - **visible I/O time** — blocking dataset reads plus unit waits,
//! - **computation time** — total execution time minus visible I/O.

use crate::backend::{
    DirectBackend, FaultMode, FaultReport, GodivaBackend, Granularity, SnapshotSource,
};
use crate::camera::Camera;
use crate::color::{ColorMap, ColorScheme};
use crate::error::{VizError, VizResult};
use crate::filters::{clip_surface, isosurface, plane_slice, surface, TriangleSoup};
use crate::ppm::write_ppm;
use crate::raster::{rasterize, Framebuffer};
use crate::spec::{GraphicsOp, TestSpec};
use godiva_core::GboStats;
use godiva_genx::GenxConfig;
use godiva_obs::{MetricsRegistry, Tracer};
use godiva_platform::{CpuPool, Storage};
use godiva_sdf::ReadOptions;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which Voyager build to run — the paper's O / G / TG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Original implementation, no GODIVA (O).
    Original,
    /// Single-thread GODIVA library (G).
    GodivaSingle,
    /// Multi-thread GODIVA library with background I/O (TG).
    GodivaMulti,
}

impl Mode {
    /// Short label used in reports ("O", "G", "TG").
    pub fn label(self) -> &'static str {
        match self {
            Mode::Original => "O",
            Mode::GodivaSingle => "G",
            Mode::GodivaMulti => "TG",
        }
    }
}

/// Everything a Voyager run needs.
pub struct VoyagerOptions {
    /// Storage holding the GENx snapshot files.
    pub storage: Arc<dyn Storage>,
    /// CPU pool of the platform (compute and decode run under its
    /// core tokens).
    pub cpu: CpuPool,
    /// Dataset geometry/paths.
    pub genx: GenxConfig,
    /// Snapshots to process, in order.
    pub snapshots: Vec<usize>,
    /// The visualization test to run.
    pub spec: TestSpec,
    /// Which build to use.
    pub mode: Mode,
    /// GODIVA memory budget in bytes (ignored for `Mode::Original`;
    /// paper: 384 MB).
    pub mem_limit: u64,
    /// I/O executor workers for `Mode::GodivaMulti` (1 = the paper's
    /// single background thread; ignored for the other modes).
    pub io_threads: usize,
    /// Synthetic decode cost charged per KiB read (the HDF
    /// interpretation overhead; runs on whichever thread reads).
    pub decode_work_per_kib: u64,
    /// GODIVA unit granularity.
    pub granularity: Granularity,
    /// Output image size.
    pub image_size: (usize, usize),
    /// Where to write PPM images (`None` = render but don't store).
    pub images_out: Option<(Arc<dyn Storage>, String)>,
    /// Explicit camera (`None` = auto-frame the dataset bounds). The
    /// CLI passes the camera position file's contents here.
    pub camera: Option<Camera>,
    /// Image file format for `images_out`.
    pub image_format: ImageFormat,
    /// Retry policy for failing reads (applies to the GODIVA modes).
    pub retry: godiva_core::RetryPolicy,
    /// Abort on read failures (default) or degrade: skip the failed
    /// file/snapshot, render the rest, and report what was skipped.
    pub fault_mode: FaultMode,
    /// Tracer for render spans and (via the GODIVA modes) the database's
    /// unit-lifecycle events. Disabled by default: zero cost.
    pub tracer: Tracer,
    /// Metrics registry the database publishes counters into.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Crash flight recorder the database installs (`None` disables it;
    /// the default is a fresh default-capacity recorder).
    pub flight_recorder: Option<Arc<godiva_obs::FlightRecorder>>,
    /// Post-mortem dump destination override (`None` = temp dir).
    pub postmortem_path: Option<std::path::PathBuf>,
    /// Second-tier spill cache for evicted units (GODIVA modes only;
    /// `None` disables spilling).
    pub spill: Option<godiva_core::SpillConfig>,
    /// Override the mode's unit-retirement behaviour: `Some(false)`
    /// keeps finished units cached for revisits (interactive-style
    /// browsing traces), `Some(true)` deletes them after each snapshot,
    /// `None` uses the mode default (batch deletes).
    pub delete_after_use: Option<bool>,
    /// Write-ahead log directory for the GODIVA modes (`None` disables
    /// journaling). With `resume`, recovery replays this log.
    pub wal_dir: Option<std::path::PathBuf>,
    /// Journal flushing discipline when `wal_dir` is set.
    pub durability: godiva_core::Durability,
    /// Recover from the WAL in `wal_dir` instead of starting fresh:
    /// journaled units are re-seeded and surviving spill frames
    /// re-adopted, so a run killed mid-flight picks up warm.
    pub resume: bool,
    /// Cut an LSN-stamped snapshot of the database into this directory
    /// after the run (GODIVA modes with a WAL only).
    pub snapshot_out: Option<std::path::PathBuf>,
    /// Liveness watchdog interval for the GODIVA modes (`None`
    /// disables it): work outstanding with no unit-lifecycle progress
    /// for this long counts a stall, dumps the flight recorder, and
    /// shows up on the health engine's `watchdog` rule.
    pub watchdog: Option<Duration>,
    /// Health engine handle to attach to the database, so
    /// `Gbo::pressure()` answers from its sliding windows and the run's
    /// alert lifecycle reflects this database's counters.
    pub health: Option<godiva_obs::HealthHandle>,
}

/// Output image encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ImageFormat {
    /// Binary PPM (P6).
    #[default]
    Ppm,
    /// Uncompressed-deflate PNG.
    Png,
}

impl ImageFormat {
    /// File extension (without the dot).
    pub fn extension(self) -> &'static str {
        match self {
            ImageFormat::Ppm => "ppm",
            ImageFormat::Png => "png",
        }
    }
}

impl VoyagerOptions {
    /// Reasonable defaults for the given storage, CPU, dataset and test.
    pub fn new(
        storage: Arc<dyn Storage>,
        cpu: CpuPool,
        genx: GenxConfig,
        spec: TestSpec,
        mode: Mode,
    ) -> Self {
        let snapshots = (0..genx.snapshots).collect();
        VoyagerOptions {
            storage,
            cpu,
            genx,
            snapshots,
            spec,
            mode,
            mem_limit: 384 << 20,
            io_threads: 1,
            decode_work_per_kib: 25,
            granularity: Granularity::Snapshot,
            image_size: (192, 144),
            images_out: None,
            camera: None,
            image_format: ImageFormat::Ppm,
            retry: godiva_core::RetryPolicy::none(),
            fault_mode: FaultMode::Abort,
            tracer: Tracer::disabled(),
            metrics: None,
            flight_recorder: Some(Arc::new(godiva_obs::FlightRecorder::default())),
            postmortem_path: None,
            spill: None,
            delete_after_use: None,
            wal_dir: None,
            durability: godiva_core::Durability::default(),
            resume: false,
            snapshot_out: None,
            watchdog: None,
            health: None,
        }
    }
}

/// Results of one Voyager run, in the paper's terms.
#[derive(Debug, Clone)]
pub struct VoyagerReport {
    /// Test name ("simple" / "medium" / "complex").
    pub test: String,
    /// Build label ("O" / "G" / "TG").
    pub mode: &'static str,
    /// Total execution time.
    pub total: Duration,
    /// Visible I/O time (blocking reads + unit waits).
    pub visible_io: Duration,
    /// Computation time = total − visible I/O.
    pub computation: Duration,
    /// Images rendered.
    pub images: usize,
    /// Per-snapshot framebuffer checksums (identical across modes for
    /// the same test and dataset).
    pub image_checksums: Vec<u64>,
    /// GODIVA statistics (absent for `Mode::Original`).
    pub gbo_stats: Option<GboStats>,
    /// What the run skipped and absorbed (empty unless
    /// [`FaultMode::Degrade`] was selected and faults occurred).
    pub fault_report: FaultReport,
    /// The snapshot cut after the run, when
    /// [`VoyagerOptions::snapshot_out`] was set and the mode has a
    /// database.
    pub snapshot: Option<godiva_core::SnapshotInfo>,
}

/// Apply one graphics op to one block's data.
pub(crate) fn apply_op(
    op: &GraphicsOp,
    data: &crate::backend::BlockData,
    bounds: ([f64; 3], [f64; 3]),
) -> VizResult<TriangleSoup> {
    match op {
        GraphicsOp::Surface { .. } => surface(&data.mesh, &data.scalar),
        GraphicsOp::Isosurface { fraction, .. } => {
            // Isovalue from the *block's* range keeps every block
            // contributing geometry; the fraction is the spec's knob.
            let (min, max) = match data
                .scalar
                .iter()
                .copied()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
                    (lo.min(v), hi.max(v))
                }) {
                (lo, hi) if lo.is_finite() && hi > lo => (lo, hi),
                _ => return Ok(TriangleSoup::new()),
            };
            let iso = min + fraction * (max - min);
            isosurface(&data.mesh, &data.scalar, iso)
        }
        GraphicsOp::Slice { axis, fraction, .. } => {
            let plane = axis.plane_at(bounds.0, bounds.1, *fraction);
            plane_slice(&data.mesh, &data.scalar, plane)
        }
        GraphicsOp::Clip { axis, fraction, .. } => {
            let plane = axis.plane_at(bounds.0, bounds.1, *fraction);
            clip_surface(&data.mesh, &data.scalar, plane)
        }
        GraphicsOp::Glyphs { scale, stride, .. } => {
            crate::glyphs::vector_glyphs(&data.mesh, &data.raw, *scale, *stride)
        }
        GraphicsOp::Threshold { lo, hi, .. } => {
            let (min, max) = match data
                .scalar
                .iter()
                .copied()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), v| {
                    (a.min(v), b.max(v))
                }) {
                (a, b) if a.is_finite() && b > a => (a, b),
                _ => return Ok(TriangleSoup::new()),
            };
            crate::glyphs::threshold(
                &data.mesh,
                &data.scalar,
                min + lo * (max - min),
                min + hi * (max - min),
            )
        }
    }
}

/// World bounds of the generated annulus dataset (known from the
/// config, so every mode uses identical planes and camera).
fn dataset_bounds(genx: &GenxConfig) -> ([f64; 3], [f64; 3]) {
    (
        [-genx.r_outer, -genx.r_outer, 0.0],
        [genx.r_outer, genx.r_outer, genx.height],
    )
}

/// Run one Voyager configuration to completion.
pub fn run_voyager(opts: VoyagerOptions) -> VizResult<VoyagerReport> {
    if opts.snapshots.is_empty() {
        return Err(VizError::Pipeline("no snapshots to process".into()));
    }
    let read_options = ReadOptions::new().with_cpu(opts.cpu.clone(), opts.decode_work_per_kib);
    let mut backend: Box<dyn SnapshotSource> = match opts.mode {
        Mode::Original => Box::new(
            DirectBackend::new(opts.storage.clone(), opts.genx.clone(), read_options)
                .with_fault_mode(opts.fault_mode),
        ),
        Mode::GodivaSingle | Mode::GodivaMulti => {
            let mut boptions = crate::backend::GodivaBackendOptions::batch(
                opts.spec
                    .distinct_vars()
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                opts.mode == Mode::GodivaMulti,
                opts.mem_limit,
            );
            boptions.io_threads = opts.io_threads;
            boptions.granularity = opts.granularity;
            boptions.retry = opts.retry;
            boptions.fault_mode = opts.fault_mode;
            boptions.tracer = opts.tracer.clone();
            boptions.metrics = opts.metrics.clone();
            boptions.flight_recorder = opts.flight_recorder.clone();
            boptions.postmortem_path = opts.postmortem_path.clone();
            boptions.spill = opts.spill.clone();
            boptions.wal_dir = opts.wal_dir.clone();
            boptions.durability = opts.durability;
            boptions.watchdog = opts.watchdog;
            if let Some(delete) = opts.delete_after_use {
                boptions.delete_after_use = delete;
            }
            let be = if opts.resume {
                GodivaBackend::open_resuming(
                    opts.storage.clone(),
                    opts.genx.clone(),
                    read_options,
                    boptions,
                )?
            } else {
                GodivaBackend::new(
                    opts.storage.clone(),
                    opts.genx.clone(),
                    read_options,
                    boptions,
                )
            };
            if let Some(health) = &opts.health {
                be.db().attach_health(health.clone());
            }
            Box::new(be)
        }
    };

    let bounds = dataset_bounds(&opts.genx);
    let camera = opts
        .camera
        .clone()
        .unwrap_or_else(|| Camera::framing(bounds.0, bounds.1));
    let (w, h) = opts.image_size;
    let mut fb = Framebuffer::new(w, h);
    let mut checksums = Vec::with_capacity(opts.snapshots.len());

    let tracer = opts.tracer.clone();
    let started = Instant::now();
    backend.begin_run(&opts.snapshots)?;
    for &s in &opts.snapshots {
        let snap_start = tracer.now_us();
        fb.clear();
        let mut rendered_blocks = 0usize;
        for op in &opts.spec.ops {
            let pass_start = tracer.now_us();
            let data = backend.load_pass(s, op.var())?;
            rendered_blocks += data.len();
            // Shared colour map per pass, fitted over all blocks so the
            // image is identical no matter which backend produced the
            // buffers.
            let mut all: Vec<f64> = Vec::new();
            for d in &data {
                all.extend_from_slice(&d.scalar);
            }
            let cmap = ColorMap::fit(&all, ColorScheme::Rainbow);
            // Real geometry + rasterization work…
            for d in &data {
                let block_start = tracer.now_us();
                let soup = apply_op(op, d, bounds)?;
                rasterize(&mut fb, &camera, &cmap, &soup);
                if tracer.enabled() {
                    tracer.complete(
                        "viz",
                        "render_block",
                        block_start,
                        vec![("snapshot", s.into()), ("block", d.block.into())],
                    );
                }
            }
            // …plus the synthetic VTK-scale processing load, run under a
            // core token so it contends like real computation.
            opts.cpu
                .compute_sliced(opts.spec.work_per_op, Duration::from_millis(2));
            if tracer.enabled() {
                tracer.complete(
                    "viz",
                    "render_pass",
                    pass_start,
                    vec![
                        ("snapshot", s.into()),
                        ("var", op.var().to_string().into()),
                        ("blocks", data.len().into()),
                    ],
                );
            }
        }
        // A snapshot every block of which was skipped under Degrade
        // produces no image — the skip is in the fault report instead.
        let fully_skipped = opts.fault_mode == FaultMode::Degrade && rendered_blocks == 0;
        if !fully_skipped {
            if let Some((out, prefix)) = &opts.images_out {
                let path = format!("{prefix}/snap_{s:04}.{}", opts.image_format.extension());
                match opts.image_format {
                    ImageFormat::Ppm => write_ppm(out.as_ref(), &path, &fb),
                    ImageFormat::Png => crate::png::write_png(out.as_ref(), &path, &fb),
                }
                .map_err(godiva_sdf::SdfError::Io)?;
            }
            checksums.push(fb.checksum());
        }
        backend.end_snapshot(s)?;
        if tracer.enabled() {
            tracer.complete(
                "viz",
                "render_snapshot",
                snap_start,
                vec![
                    ("snapshot", s.into()),
                    ("blocks", rendered_blocks.into()),
                    ("skipped", fully_skipped.into()),
                ],
            );
        }
    }
    let total = started.elapsed();
    let visible_io = backend.visible_io();
    let snapshot = match &opts.snapshot_out {
        Some(dir) => match backend.write_snapshot(dir) {
            Some(Ok(info)) => Some(info),
            Some(Err(e)) => return Err(e.into()),
            None => None,
        },
        None => None,
    };
    Ok(VoyagerReport {
        test: opts.spec.name.clone(),
        mode: opts.mode.label(),
        total,
        visible_io,
        computation: total.saturating_sub(visible_io),
        images: checksums.len(),
        image_checksums: checksums,
        gbo_stats: backend.gbo_stats(),
        fault_report: backend.fault_report(),
        snapshot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use godiva_platform::MemFs;

    fn dataset() -> (Arc<dyn Storage>, GenxConfig) {
        let fs = Arc::new(MemFs::new());
        let config = GenxConfig::tiny();
        godiva_genx::generate(fs.as_ref(), &config).unwrap();
        (fs as Arc<dyn Storage>, config)
    }

    fn run(mode: Mode, spec: TestSpec) -> VoyagerReport {
        let (fs, config) = dataset();
        let mut opts = VoyagerOptions::new(fs, CpuPool::new(2, 4.0), config, spec, mode);
        opts.decode_work_per_kib = 0;
        opts.spec.work_per_op = godiva_platform::Work::from_micros(100);
        run_voyager(opts).unwrap()
    }

    #[test]
    fn all_modes_render_identical_images() {
        let o = run(Mode::Original, TestSpec::simple());
        let g = run(Mode::GodivaSingle, TestSpec::simple());
        let tg = run(Mode::GodivaMulti, TestSpec::simple());
        assert_eq!(o.images, 3);
        assert_eq!(o.image_checksums, g.image_checksums, "O vs G images differ");
        assert_eq!(
            o.image_checksums, tg.image_checksums,
            "O vs TG images differ"
        );
        assert!(o.gbo_stats.is_none());
        assert!(g.gbo_stats.is_some());
    }

    #[test]
    fn images_are_nonempty_and_vary_across_time() {
        let r = run(Mode::Original, TestSpec::simple());
        // Snapshots have different fields, so at least two frames differ.
        let distinct: std::collections::HashSet<u64> = r.image_checksums.iter().copied().collect();
        assert!(distinct.len() >= 2, "frames should not all be identical");
    }

    #[test]
    fn glyph_and_threshold_ops_render() {
        use crate::spec::GraphicsOp;
        let spec = TestSpec {
            name: "extras".into(),
            ops: vec![
                GraphicsOp::Glyphs {
                    var: "velocity".into(),
                    scale: 2e-3,
                    stride: 2,
                },
                GraphicsOp::Threshold {
                    var: "stress_avg".into(),
                    lo: 0.3,
                    hi: 0.8,
                },
            ],
            work_per_op: godiva_platform::Work::ZERO,
        };
        let o = run(Mode::Original, spec.clone());
        let tg = run(Mode::GodivaMulti, spec);
        assert_eq!(o.images, 3);
        assert_eq!(o.image_checksums, tg.image_checksums);
    }

    #[test]
    fn all_paper_specs_run_in_every_mode() {
        for spec in TestSpec::all() {
            for mode in [Mode::Original, Mode::GodivaSingle, Mode::GodivaMulti] {
                let r = run(mode, spec.clone());
                assert_eq!(r.images, 3, "{} {}", spec.name, r.mode);
                assert!(r.total >= r.visible_io);
            }
        }
    }

    #[test]
    fn images_written_when_requested() {
        let (fs, config) = dataset();
        let out = Arc::new(MemFs::new());
        let mut opts = VoyagerOptions::new(
            fs,
            CpuPool::new(2, 4.0),
            config,
            TestSpec::simple(),
            Mode::Original,
        );
        opts.decode_work_per_kib = 0;
        opts.spec.work_per_op = godiva_platform::Work::from_micros(100);
        opts.images_out = Some((out.clone() as Arc<dyn Storage>, "frames".into()));
        let r = run_voyager(opts).unwrap();
        assert_eq!(out.list("frames/").len(), r.images);
        let (w, h, _) = crate::ppm::read_ppm(out.as_ref(), "frames/snap_0000.ppm").unwrap();
        assert_eq!((w, h), (192, 144));
    }

    #[test]
    fn empty_snapshot_list_rejected() {
        let (fs, config) = dataset();
        let mut opts = VoyagerOptions::new(
            fs,
            CpuPool::new(1, 4.0),
            config,
            TestSpec::simple(),
            Mode::Original,
        );
        opts.snapshots.clear();
        assert!(run_voyager(opts).is_err());
    }

    #[test]
    fn trace_covers_render_and_unit_lifecycle() {
        use godiva_obs::MemorySink;

        let (fs, config) = dataset();
        let sink = Arc::new(MemorySink::new());
        let registry = Arc::new(MetricsRegistry::new());
        let mut opts = VoyagerOptions::new(
            fs,
            CpuPool::new(2, 4.0),
            config,
            TestSpec::simple(),
            Mode::GodivaMulti,
        );
        opts.decode_work_per_kib = 0;
        opts.spec.work_per_op = godiva_platform::Work::ZERO;
        opts.tracer = Tracer::new(sink.clone());
        opts.metrics = Some(registry.clone());
        run_voyager(opts).unwrap();

        let names: std::collections::HashSet<String> =
            sink.snapshot().iter().map(|e| e.name.to_string()).collect();
        for expected in [
            "unit_added",
            "read_start",
            "read_done",
            "read_unit",
            "unit_deleted",
            "render_block",
            "render_pass",
            "render_snapshot",
        ] {
            assert!(names.contains(expected), "missing event '{expected}'");
        }
        assert!(!registry.is_empty(), "metrics registry was populated");
        assert!(registry.render().contains("gbo.units_read"));
    }

    #[test]
    fn spill_restores_show_up_in_trace_analytics() {
        use godiva_core::SpillConfig;
        use godiva_obs::{analyze_trace, JsonlSink};
        use std::sync::Mutex;

        // A `Write` handle the test can read back after the run.
        #[derive(Clone)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Buf {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let (fs, config) = dataset();
        let browse = |mut opts: VoyagerOptions| {
            opts.decode_work_per_kib = 0;
            opts.spec.work_per_op = godiva_platform::Work::ZERO;
            // Two sweeps with interactive retirement: second-pass
            // visits find their snapshot evicted.
            opts.snapshots = (0..config.snapshots).chain(0..config.snapshots).collect();
            opts.delete_after_use = Some(false);
            opts
        };
        // Calibration pass: unbounded memory, no spill — yields the
        // per-unit footprint and the reference images.
        let mut opts = browse(VoyagerOptions::new(
            fs.clone(),
            CpuPool::new(2, 4.0),
            config.clone(),
            TestSpec::simple(),
            Mode::GodivaSingle,
        ));
        opts.mem_limit = 1 << 40;
        let reference = run_voyager(opts).unwrap();
        let stats = reference.gbo_stats.as_ref().unwrap();
        let unit_bytes = stats.bytes_allocated / config.snapshots as u64;

        // Traced run under a ~2.5-unit budget with an ample spill.
        let buf = Buf(Arc::new(Mutex::new(Vec::new())));
        let mut opts = browse(VoyagerOptions::new(
            fs,
            CpuPool::new(2, 4.0),
            config.clone(),
            TestSpec::simple(),
            Mode::GodivaSingle,
        ));
        opts.mem_limit = unit_bytes * 5 / 2;
        opts.spill = Some(SpillConfig {
            storage: Arc::new(MemFs::new()),
            dir: "spill".into(),
            budget: 1 << 30,
        });
        opts.tracer = Tracer::new(Arc::new(JsonlSink::new(buf.clone())));
        let report = run_voyager(opts).unwrap();
        assert_eq!(
            report.image_checksums, reference.image_checksums,
            "spilled revisits must render identical images"
        );
        let stats = report.gbo_stats.unwrap();
        assert_eq!(stats.spill_hits, config.snapshots as u64);
        assert_eq!(stats.spill_corrupt, 0);

        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let tr = analyze_trace(&text).unwrap();
        assert_eq!(tr.spill.hits as u64, stats.spill_hits);
        assert_eq!(tr.spill.writes as u64, stats.spill_writes);
        assert!(tr.spill.restored_bytes > 0, "hits must report bytes");
    }

    #[test]
    fn mode_labels() {
        assert_eq!(Mode::Original.label(), "O");
        assert_eq!(Mode::GodivaSingle.label(), "G");
        assert_eq!(Mode::GodivaMulti.label(), "TG");
    }
}
