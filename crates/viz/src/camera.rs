//! Perspective camera.
//!
//! Voyager takes "a camera position file" generated during an
//! interactive Rocketeer session. [`Camera`] is that object: a look-at
//! view transform plus a perspective projection, mapping world points to
//! screen pixels and a depth value for the z-buffer.

/// A perspective look-at camera.
#[derive(Debug, Clone)]
pub struct Camera {
    /// Eye position in world space.
    pub position: [f64; 3],
    /// Point the camera looks at.
    pub look_at: [f64; 3],
    /// Up direction (need not be orthogonal to the view axis).
    pub up: [f64; 3],
    /// Vertical field of view in degrees.
    pub fov_y_deg: f64,
    /// Near clip distance.
    pub near: f64,
}

fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}
fn dot(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}
fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}
fn normalize(a: [f64; 3]) -> [f64; 3] {
    let n = dot(a, a).sqrt();
    if n == 0.0 {
        return [0.0, 0.0, 1.0];
    }
    [a[0] / n, a[1] / n, a[2] / n]
}

/// A point projected into screen space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Projected {
    /// Pixel x (can be outside the viewport).
    pub x: f64,
    /// Pixel y.
    pub y: f64,
    /// Camera-space depth (larger = farther).
    pub depth: f64,
}

impl Camera {
    /// A camera at `position` looking at `look_at` with +z up and a 45°
    /// field of view.
    pub fn looking_at(position: [f64; 3], look_at: [f64; 3]) -> Self {
        Camera {
            position,
            look_at,
            up: [0.0, 0.0, 1.0],
            fov_y_deg: 45.0,
            near: 1e-3,
        }
    }

    /// A camera automatically framing the axis-aligned box `(min, max)`.
    pub fn framing(min: [f64; 3], max: [f64; 3]) -> Self {
        let center = [
            0.5 * (min[0] + max[0]),
            0.5 * (min[1] + max[1]),
            0.5 * (min[2] + max[2]),
        ];
        let diag =
            ((max[0] - min[0]).powi(2) + (max[1] - min[1]).powi(2) + (max[2] - min[2]).powi(2))
                .sqrt()
                .max(1e-9);
        // Back off along a 3/4 view direction far enough for a 45° fov.
        let dist = 1.5 * diag;
        let dir = normalize([1.0, 0.8, 0.6]);
        Camera::looking_at(
            [
                center[0] + dir[0] * dist,
                center[1] + dir[1] * dist,
                center[2] + dir[2] * dist,
            ],
            center,
        )
    }

    /// An orbiting camera: positioned on a circle of `radius` around
    /// `center` at height `elevation` above it, rotated by `angle`
    /// radians, looking at the center. Stepping `angle` per frame gives
    /// the classic turntable movie.
    pub fn orbit(center: [f64; 3], radius: f64, elevation: f64, angle: f64) -> Self {
        Camera::looking_at(
            [
                center[0] + radius * angle.cos(),
                center[1] + radius * angle.sin(),
                center[2] + elevation,
            ],
            center,
        )
    }

    /// Orthonormal camera basis (right, true-up, forward).
    fn basis(&self) -> ([f64; 3], [f64; 3], [f64; 3]) {
        let forward = normalize(sub(self.look_at, self.position));
        let right = normalize(cross(forward, self.up));
        let up = cross(right, forward);
        (right, up, forward)
    }

    /// Project a world point into a `width × height` viewport. Returns
    /// `None` for points on or behind the near plane.
    pub fn project(&self, p: [f64; 3], width: usize, height: usize) -> Option<Projected> {
        let (right, up, forward) = self.basis();
        let rel = sub(p, self.position);
        let z = dot(rel, forward);
        if z <= self.near {
            return None;
        }
        let x = dot(rel, right);
        let y = dot(rel, up);
        let f = 1.0 / (0.5 * self.fov_y_deg.to_radians()).tan();
        let aspect = width as f64 / height as f64;
        let ndc_x = (x / z) * f / aspect;
        let ndc_y = (y / z) * f;
        Some(Projected {
            x: (ndc_x + 1.0) * 0.5 * width as f64,
            y: (1.0 - ndc_y) * 0.5 * height as f64,
            depth: z,
        })
    }

    /// Unit vector from the scene towards the camera (used as a head
    /// light direction for shading).
    pub fn view_dir(&self) -> [f64; 3] {
        normalize(sub(self.position, self.look_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_projects_to_viewport_center() {
        let cam = Camera::looking_at([0.0, -5.0, 0.0], [0.0, 0.0, 0.0]);
        let p = cam.project([0.0, 0.0, 0.0], 200, 100).unwrap();
        assert!((p.x - 100.0).abs() < 1e-9);
        assert!((p.y - 50.0).abs() < 1e-9);
        assert!((p.depth - 5.0).abs() < 1e-9);
    }

    #[test]
    fn behind_camera_is_clipped() {
        let cam = Camera::looking_at([0.0, -5.0, 0.0], [0.0, 0.0, 0.0]);
        assert!(cam.project([0.0, -10.0, 0.0], 100, 100).is_none());
        assert!(cam.project(cam.position, 100, 100).is_none());
    }

    #[test]
    fn depth_orders_points() {
        let cam = Camera::looking_at([0.0, -5.0, 0.0], [0.0, 0.0, 0.0]);
        let near = cam.project([0.0, -1.0, 0.0], 100, 100).unwrap();
        let far = cam.project([0.0, 2.0, 0.0], 100, 100).unwrap();
        assert!(near.depth < far.depth);
    }

    #[test]
    fn up_is_up_on_screen() {
        let cam = Camera::looking_at([0.0, -5.0, 0.0], [0.0, 0.0, 0.0]);
        let hi = cam.project([0.0, 0.0, 1.0], 100, 100).unwrap();
        let lo = cam.project([0.0, 0.0, -1.0], 100, 100).unwrap();
        assert!(hi.y < lo.y, "+z up means smaller pixel y");
    }

    #[test]
    fn framing_sees_the_whole_box() {
        let cam = Camera::framing([-1.0, -1.0, -1.0], [1.0, 1.0, 1.0]);
        for corner in [
            [-1.0, -1.0, -1.0],
            [1.0, 1.0, 1.0],
            [-1.0, 1.0, -1.0],
            [1.0, -1.0, 1.0],
        ] {
            let p = cam.project(corner, 400, 300).unwrap();
            assert!(p.x >= 0.0 && p.x <= 400.0, "{p:?}");
            assert!(p.y >= 0.0 && p.y <= 300.0, "{p:?}");
        }
    }

    #[test]
    fn orbit_circles_the_center() {
        let center = [1.0, 2.0, 3.0];
        for steps in 0..8 {
            let angle = steps as f64 * std::f64::consts::FRAC_PI_4;
            let cam = Camera::orbit(center, 5.0, 2.0, angle);
            let dx = cam.position[0] - center[0];
            let dy = cam.position[1] - center[1];
            assert!(((dx * dx + dy * dy).sqrt() - 5.0).abs() < 1e-12);
            assert!((cam.position[2] - center[2] - 2.0).abs() < 1e-12);
            assert_eq!(cam.look_at, center);
        }
        // Opposite angles sit on opposite sides.
        let a = Camera::orbit(center, 5.0, 0.0, 0.0);
        let b = Camera::orbit(center, 5.0, 0.0, std::f64::consts::PI);
        assert!((a.position[0] - center[0] + b.position[0] - center[0]).abs() < 1e-9);
    }

    #[test]
    fn view_dir_is_unit() {
        let cam = Camera::looking_at([3.0, 4.0, 0.0], [0.0, 0.0, 0.0]);
        let d = cam.view_dir();
        let n = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        assert!((n - 1.0).abs() < 1e-12);
    }
}
