//! Vector glyphs and threshold extraction — the remaining Rocketeer
//! operation types (§4.1 shows velocity/stress visualizations; hedgehog
//! glyphs and thresholding are the standard VTK tools for them).

use crate::error::VizResult;
use crate::filters::{surface, TriangleSoup};
use godiva_mesh::TetMesh;

fn norm(v: [f64; 3]) -> f64 {
    (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt()
}

/// A vector perpendicular to `v` (any one).
fn any_perpendicular(v: [f64; 3]) -> [f64; 3] {
    // Cross with the axis least aligned with v.
    let axis = if v[0].abs() <= v[1].abs() && v[0].abs() <= v[2].abs() {
        [1.0, 0.0, 0.0]
    } else if v[1].abs() <= v[2].abs() {
        [0.0, 1.0, 0.0]
    } else {
        [0.0, 0.0, 1.0]
    };
    [
        v[1] * axis[2] - v[2] * axis[1],
        v[2] * axis[0] - v[0] * axis[2],
        v[0] * axis[1] - v[1] * axis[0],
    ]
}

/// Hedgehog glyphs: one arrow (a thin kite of two triangles) per node,
/// oriented along the node's vector, length `scale * |v|`, coloured by
/// `|v|`. `stride` draws every n-th node (dense meshes need thinning).
///
/// `vectors` is flat `[x0,y0,z0, x1,y1,z1, …]` like the GENx vector
/// datasets.
pub fn vector_glyphs(
    mesh: &TetMesh,
    vectors: &[f64],
    scale: f64,
    stride: usize,
) -> VizResult<TriangleSoup> {
    if vectors.len() != mesh.node_count() * 3 {
        return Err(crate::error::VizError::Pipeline(format!(
            "glyphs: {} vector components for {} nodes",
            vectors.len(),
            mesh.node_count()
        )));
    }
    let stride = stride.max(1);
    let mut soup = TriangleSoup::new();
    for n in (0..mesh.node_count()).step_by(stride) {
        let v = [vectors[3 * n], vectors[3 * n + 1], vectors[3 * n + 2]];
        let mag = norm(v);
        if mag == 0.0 || !mag.is_finite() {
            continue;
        }
        let p = mesh.points[n];
        let tip = [
            p[0] + v[0] * scale,
            p[1] + v[1] * scale,
            p[2] + v[2] * scale,
        ];
        // Half-width 10 % of the arrow length, perpendicular to it.
        let mut w = any_perpendicular(v);
        let wn = norm(w);
        if wn == 0.0 {
            continue;
        }
        let half = 0.1 * mag * scale / wn;
        w = [w[0] * half, w[1] * half, w[2] * half];
        let base = soup.positions.len() as u32;
        soup.positions.push([p[0] - w[0], p[1] - w[1], p[2] - w[2]]);
        soup.positions.push([p[0] + w[0], p[1] + w[1], p[2] + w[2]]);
        soup.positions.push(tip);
        soup.scalars.extend_from_slice(&[mag, mag, mag]);
        soup.tris.push([base, base + 1, base + 2]);
    }
    Ok(soup)
}

/// Threshold: the outer surface of the sub-mesh formed by elements whose
/// *average nodal scalar* lies in `[lo, hi]`.
pub fn threshold(mesh: &TetMesh, scalars: &[f64], lo: f64, hi: f64) -> VizResult<TriangleSoup> {
    mesh.check_node_field(scalars)
        .map_err(crate::error::VizError::Mesh)?;
    let kept: Vec<[u32; 4]> = mesh
        .tets
        .iter()
        .copied()
        .filter(|t| {
            let avg = t.iter().map(|&n| scalars[n as usize]).sum::<f64>() / 4.0;
            avg >= lo && avg <= hi
        })
        .collect();
    let sub = TetMesh {
        points: mesh.points.clone(),
        tets: kept,
    };
    surface(&sub, scalars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use godiva_mesh::box_tet_mesh;

    #[test]
    fn glyphs_one_triangle_per_strided_node() {
        let m = box_tet_mesh(2, 2, 2, 1.0, 1.0, 1.0);
        let vectors: Vec<f64> = (0..m.node_count()).flat_map(|_| [1.0, 0.5, 0.25]).collect();
        let all = vector_glyphs(&m, &vectors, 0.1, 1).unwrap();
        assert_eq!(all.tri_count(), m.node_count());
        let thinned = vector_glyphs(&m, &vectors, 0.1, 3).unwrap();
        assert_eq!(thinned.tri_count(), m.node_count().div_ceil(3));
    }

    #[test]
    fn glyph_geometry_points_along_vector() {
        let m = godiva_mesh::tet::unit_tet();
        let mut vectors = vec![0.0; 12];
        vectors[0] = 2.0; // node 0: v = (2, 0, 0)
        let soup = vector_glyphs(&m, &vectors, 0.5, 1).unwrap();
        assert_eq!(soup.tri_count(), 1, "zero vectors are skipped");
        // The tip is at p + v*scale = (1, 0, 0).
        let tip = soup.positions[2];
        assert!((tip[0] - 1.0).abs() < 1e-12);
        // Scalar carries the magnitude.
        assert!((soup.scalars[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn glyphs_skip_nan_and_zero() {
        let m = godiva_mesh::tet::unit_tet();
        let mut vectors = vec![0.0; 12];
        vectors[3] = f64::NAN;
        let soup = vector_glyphs(&m, &vectors, 1.0, 1).unwrap();
        assert_eq!(soup.tri_count(), 0);
    }

    #[test]
    fn glyphs_reject_bad_lengths() {
        let m = godiva_mesh::tet::unit_tet();
        assert!(vector_glyphs(&m, &[0.0; 7], 1.0, 1).is_err());
    }

    #[test]
    fn threshold_selects_band() {
        // f = x over a 4-cell-long box: thresholding the middle half
        // keeps a slab whose surface is closed and lies within x-range.
        let m = box_tet_mesh(8, 2, 2, 1.0, 1.0, 1.0);
        let f: Vec<f64> = m.points.iter().map(|p| p[0]).collect();
        let soup = threshold(&m, &f, 0.25, 0.75).unwrap();
        assert!(soup.tri_count() > 0);
        for p in &soup.positions {
            assert!(p[0] >= 0.25 - 1e-9 && p[0] <= 0.75 + 1e-9, "x = {}", p[0]);
        }
        // Empty band → empty surface.
        assert_eq!(threshold(&m, &f, 5.0, 6.0).unwrap().tri_count(), 0);
        // Full band → the whole boundary.
        let full = threshold(&m, &f, -1.0, 2.0).unwrap();
        let whole = surface(&m, &f).unwrap();
        assert_eq!(full.tri_count(), whole.tri_count());
    }

    #[test]
    fn threshold_checks_field_length() {
        let m = box_tet_mesh(1, 1, 1, 1.0, 1.0, 1.0);
        assert!(threshold(&m, &[0.0; 2], 0.0, 1.0).is_err());
    }

    #[test]
    fn perpendicular_is_perpendicular() {
        for v in [
            [1.0, 0.0, 0.0],
            [0.0, 2.0, 0.0],
            [1.0, 1.0, 1.0],
            [0.1, -3.0, 0.4],
        ] {
            let w = any_perpendicular(v);
            let dot = v[0] * w[0] + v[1] * w[1] + v[2] * w[2];
            assert!(dot.abs() < 1e-12);
            assert!(norm(w) > 0.0);
        }
    }
}
