//! Z-buffered software triangle rasterizer with Gouraud shading.
//!
//! Rocketeer renders through VTK; our stand-in is a small, deterministic
//! scan-line rasterizer: project each triangle with the [`Camera`], shade
//! vertices by a head-light diffuse term, interpolate colour scalar and
//! depth across the triangle, and keep the nearest fragment per pixel.

use crate::camera::Camera;
use crate::color::{ColorMap, Rgb};
use crate::filters::TriangleSoup;

/// An RGB image with a depth buffer.
#[derive(Debug, Clone)]
pub struct Framebuffer {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    pixels: Vec<Rgb>,
    depth: Vec<f64>,
}

impl Framebuffer {
    /// A cleared framebuffer (black background, infinite depth).
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0);
        Framebuffer {
            width,
            height,
            pixels: vec![Rgb::BLACK; width * height],
            depth: vec![f64::INFINITY; width * height],
        }
    }

    /// Reset to background.
    pub fn clear(&mut self) {
        self.pixels.fill(Rgb::BLACK);
        self.depth.fill(f64::INFINITY);
    }

    /// Pixel at `(x, y)`.
    pub fn pixel(&self, x: usize, y: usize) -> Rgb {
        self.pixels[y * self.width + x]
    }

    /// Number of pixels covered by any geometry.
    pub fn covered_pixels(&self) -> usize {
        self.depth.iter().filter(|d| d.is_finite()).count()
    }

    /// Raw RGB bytes, row-major.
    pub fn rgb_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.pixels.len() * 3);
        for p in &self.pixels {
            out.extend_from_slice(&[p.0, p.1, p.2]);
        }
        out
    }

    /// A cheap content signature for comparing renders in tests.
    pub fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for p in &self.pixels {
            for b in [p.0, p.1, p.2] {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }

    /// Depth-composite `other` into `self`: per pixel, keep whichever
    /// fragment is nearer. This is the classic sort-last parallel
    /// rendering merge — the Houston server composites its workers'
    /// partial images this way.
    pub fn merge_nearer(&mut self, other: &Framebuffer) {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "framebuffer sizes must match for compositing"
        );
        for i in 0..self.pixels.len() {
            if other.depth[i] < self.depth[i] {
                self.depth[i] = other.depth[i];
                self.pixels[i] = other.pixels[i];
            }
        }
    }

    fn try_put(&mut self, x: usize, y: usize, depth: f64, color: Rgb) {
        let i = y * self.width + x;
        if depth < self.depth[i] {
            self.depth[i] = depth;
            self.pixels[i] = color;
        }
    }
}

fn normal_of(a: [f64; 3], b: [f64; 3], c: [f64; 3]) -> [f64; 3] {
    let u = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
    let v = [c[0] - a[0], c[1] - a[1], c[2] - a[2]];
    let n = [
        u[1] * v[2] - u[2] * v[1],
        u[2] * v[0] - u[0] * v[2],
        u[0] * v[1] - u[1] * v[0],
    ];
    let len = (n[0] * n[0] + n[1] * n[1] + n[2] * n[2]).sqrt();
    if len == 0.0 {
        return [0.0, 0.0, 1.0];
    }
    [n[0] / len, n[1] / len, n[2] / len]
}

/// Rasterize `soup` into `fb` through `camera`, colouring scalars with
/// `cmap`. Returns the number of triangles drawn (after clipping).
pub fn rasterize(
    fb: &mut Framebuffer,
    camera: &Camera,
    cmap: &ColorMap,
    soup: &TriangleSoup,
) -> usize {
    let light = camera.view_dir();
    let mut drawn = 0usize;
    for t in &soup.tris {
        let pa = soup.positions[t[0] as usize];
        let pb = soup.positions[t[1] as usize];
        let pc = soup.positions[t[2] as usize];
        // Two-sided head-light diffuse shading with a little ambient.
        let n = normal_of(pa, pb, pc);
        let ndotl = (n[0] * light[0] + n[1] * light[1] + n[2] * light[2]).abs();
        let shade = 0.25 + 0.75 * ndotl;

        let (Some(a), Some(b), Some(c)) = (
            camera.project(pa, fb.width, fb.height),
            camera.project(pb, fb.width, fb.height),
            camera.project(pc, fb.width, fb.height),
        ) else {
            continue; // crosses the near plane; drop it
        };
        let sa = soup.scalars[t[0] as usize];
        let sb = soup.scalars[t[1] as usize];
        let sc = soup.scalars[t[2] as usize];

        // Screen-space bounding box clipped to the viewport.
        let min_x = a.x.min(b.x).min(c.x).floor().max(0.0) as usize;
        let max_x = (a.x.max(b.x).max(c.x).ceil() as isize).min(fb.width as isize - 1);
        let min_y = a.y.min(b.y).min(c.y).floor().max(0.0) as usize;
        let max_y = (a.y.max(b.y).max(c.y).ceil() as isize).min(fb.height as isize - 1);
        if max_x < min_x as isize || max_y < min_y as isize {
            continue;
        }
        let (max_x, max_y) = (max_x as usize, max_y as usize);

        // Barycentric setup.
        let det = (b.x - a.x) * (c.y - a.y) - (c.x - a.x) * (b.y - a.y);
        if det.abs() < 1e-12 {
            continue; // degenerate on screen
        }
        drawn += 1;
        for y in min_y..=max_y {
            for x in min_x..=max_x {
                let px = x as f64 + 0.5;
                let py = y as f64 + 0.5;
                let w1 = ((px - a.x) * (c.y - a.y) - (c.x - a.x) * (py - a.y)) / det;
                let w2 = ((b.x - a.x) * (py - a.y) - (px - a.x) * (b.y - a.y)) / det;
                let w0 = 1.0 - w1 - w2;
                if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                    continue;
                }
                let depth = w0 * a.depth + w1 * b.depth + w2 * c.depth;
                let scalar = w0 * sa + w1 * sb + w2 * sc;
                fb.try_put(x, y, depth, cmap.map(scalar).scale(shade));
            }
        }
    }
    drawn
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::ColorScheme;

    fn one_triangle(z: f64, scalar: f64) -> TriangleSoup {
        TriangleSoup {
            positions: vec![[-1.0, z, -1.0], [1.0, z, -1.0], [0.0, z, 1.0]],
            scalars: vec![scalar; 3],
            tris: vec![[0, 1, 2]],
        }
    }

    fn test_camera() -> Camera {
        Camera::looking_at([0.0, -5.0, 0.0], [0.0, 0.0, 0.0])
    }

    #[test]
    fn triangle_covers_center() {
        let mut fb = Framebuffer::new(64, 64);
        let cmap = ColorMap::new(0.0, 1.0, ColorScheme::Gray);
        let drawn = rasterize(&mut fb, &test_camera(), &cmap, &one_triangle(0.0, 1.0));
        assert_eq!(drawn, 1);
        assert!(fb.covered_pixels() > 100);
        assert_ne!(fb.pixel(32, 32), Rgb::BLACK);
        // Corners stay background.
        assert_eq!(fb.pixel(0, 0), Rgb::BLACK);
    }

    #[test]
    fn nearer_triangle_wins_depth_test() {
        let mut fb = Framebuffer::new(64, 64);
        let cmap = ColorMap::new(0.0, 1.0, ColorScheme::Gray);
        // Far triangle scalar 0.2 (dark), near triangle scalar 1.0 (white).
        rasterize(&mut fb, &test_camera(), &cmap, &one_triangle(2.0, 0.2));
        let far_pixel = fb.pixel(32, 32);
        rasterize(&mut fb, &test_camera(), &cmap, &one_triangle(-2.0, 1.0));
        let near_pixel = fb.pixel(32, 32);
        assert!(
            near_pixel.0 > far_pixel.0,
            "{near_pixel:?} vs {far_pixel:?}"
        );
        // Drawing the far one again must not overwrite.
        rasterize(&mut fb, &test_camera(), &cmap, &one_triangle(2.0, 0.2));
        assert_eq!(fb.pixel(32, 32), near_pixel);
    }

    #[test]
    fn behind_camera_dropped() {
        let mut fb = Framebuffer::new(32, 32);
        let cmap = ColorMap::new(0.0, 1.0, ColorScheme::Gray);
        let drawn = rasterize(&mut fb, &test_camera(), &cmap, &one_triangle(-10.0, 1.0));
        assert_eq!(drawn, 0);
        assert_eq!(fb.covered_pixels(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut fb = Framebuffer::new(32, 32);
        let cmap = ColorMap::new(0.0, 1.0, ColorScheme::Gray);
        rasterize(&mut fb, &test_camera(), &cmap, &one_triangle(0.0, 1.0));
        assert!(fb.covered_pixels() > 0);
        fb.clear();
        assert_eq!(fb.covered_pixels(), 0);
        assert_eq!(fb.pixel(16, 16), Rgb::BLACK);
    }

    #[test]
    fn deterministic_checksum() {
        let render = || {
            let mut fb = Framebuffer::new(48, 48);
            let cmap = ColorMap::new(0.0, 1.0, ColorScheme::Rainbow);
            rasterize(&mut fb, &test_camera(), &cmap, &one_triangle(0.0, 0.7));
            fb.checksum()
        };
        assert_eq!(render(), render());
        // Different scene → different checksum.
        let mut fb = Framebuffer::new(48, 48);
        let cmap = ColorMap::new(0.0, 1.0, ColorScheme::Rainbow);
        rasterize(&mut fb, &test_camera(), &cmap, &one_triangle(0.0, 0.2));
        assert_ne!(fb.checksum(), render());
    }

    #[test]
    fn rgb_bytes_layout() {
        let fb = Framebuffer::new(2, 2);
        let bytes = fb.rgb_bytes();
        assert_eq!(bytes.len(), 12);
        assert!(bytes.iter().all(|&b| b == 0));
    }

    #[test]
    fn merge_nearer_composites_by_depth() {
        let cmap = ColorMap::new(0.0, 1.0, ColorScheme::Gray);
        let cam = test_camera();
        // Render near and far triangles into separate buffers, merge in
        // both orders: results must agree and match a single-buffer render.
        let mut near = Framebuffer::new(64, 64);
        rasterize(&mut near, &cam, &cmap, &one_triangle(-2.0, 1.0));
        let mut far = Framebuffer::new(64, 64);
        rasterize(&mut far, &cam, &cmap, &one_triangle(2.0, 0.2));
        let mut single = Framebuffer::new(64, 64);
        rasterize(&mut single, &cam, &cmap, &one_triangle(2.0, 0.2));
        rasterize(&mut single, &cam, &cmap, &one_triangle(-2.0, 1.0));

        let mut ab = near.clone();
        ab.merge_nearer(&far);
        let mut ba = far.clone();
        ba.merge_nearer(&near);
        assert_eq!(ab.checksum(), ba.checksum(), "merge is order-independent");
        assert_eq!(
            ab.checksum(),
            single.checksum(),
            "merge equals serial render"
        );
    }

    #[test]
    #[should_panic(expected = "sizes must match")]
    fn merge_rejects_mismatched_sizes() {
        let mut a = Framebuffer::new(8, 8);
        let b = Framebuffer::new(9, 8);
        a.merge_nearer(&b);
    }

    #[test]
    fn gouraud_interpolates_scalar() {
        // Scalar 0 on the left vertices, 1 on the right vertex: the
        // pixel colour must increase left→right in a gray map.
        let soup = TriangleSoup {
            positions: vec![[-2.0, 0.0, -2.0], [-2.0, 0.0, 2.0], [2.0, 0.0, 0.0]],
            scalars: vec![0.0, 0.0, 1.0],
            tris: vec![[0, 1, 2]],
        };
        let mut fb = Framebuffer::new(64, 64);
        let cmap = ColorMap::new(0.0, 1.0, ColorScheme::Gray);
        rasterize(&mut fb, &test_camera(), &cmap, &soup);
        let left = fb.pixel(20, 32);
        let right = fb.pixel(44, 32);
        assert!(right.0 > left.0, "{right:?} vs {left:?}");
    }
}
