//! Error type for the visualization pipeline.

use std::fmt;

/// Failures while loading or rendering snapshot data.
#[derive(Debug)]
pub enum VizError {
    /// Underlying file-format error.
    Sdf(godiva_sdf::SdfError),
    /// GODIVA database error.
    Godiva(godiva_core::GodivaError),
    /// Mesh inconsistency.
    Mesh(godiva_mesh::MeshError),
    /// Pipeline misuse (unknown variable, empty snapshot list, …).
    Pipeline(String),
}

impl fmt::Display for VizError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VizError::Sdf(e) => write!(f, "file format: {e}"),
            VizError::Godiva(e) => write!(f, "godiva: {e}"),
            VizError::Mesh(e) => write!(f, "mesh: {e}"),
            VizError::Pipeline(m) => write!(f, "pipeline: {m}"),
        }
    }
}

impl std::error::Error for VizError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VizError::Sdf(e) => Some(e),
            VizError::Godiva(e) => Some(e),
            VizError::Mesh(e) => Some(e),
            VizError::Pipeline(_) => None,
        }
    }
}

impl From<godiva_sdf::SdfError> for VizError {
    fn from(e: godiva_sdf::SdfError) -> Self {
        VizError::Sdf(e)
    }
}
impl From<godiva_core::GodivaError> for VizError {
    fn from(e: godiva_core::GodivaError) -> Self {
        VizError::Godiva(e)
    }
}
impl From<godiva_mesh::MeshError> for VizError {
    fn from(e: godiva_mesh::MeshError) -> Self {
        VizError::Mesh(e)
    }
}

/// Crate-wide result alias.
pub type VizResult<T> = Result<T, VizError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn conversions_and_sources() {
        let e: VizError = godiva_sdf::SdfError::NoSuchDataset("x".into()).into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("x"));
        let e: VizError = godiva_core::GodivaError::Shutdown.into();
        assert!(e.to_string().contains("shutting down"));
        let e = VizError::Pipeline("bad".into());
        assert!(e.source().is_none());
    }
}
