//! Snapshot data backends — the heart of the paper's comparison.
//!
//! Three Voyager builds are measured in §4.2:
//!
//! - **O** (original): *"reading data and processing data are closely
//!   coupled, and certain mesh data may need to be read in repeatedly if
//!   there is more than one variable to visualize."* That is
//!   [`DirectBackend`]: every rendering pass re-opens the snapshot files
//!   and re-reads mesh + variable for each block.
//! - **G** (single-thread GODIVA): data management through a
//!   [`godiva_core::Gbo`] with background I/O disabled — redundant reads
//!   are gone (mesh read once per snapshot, buffers reused via the query
//!   interfaces), but reads still block the main thread.
//! - **TG** (multi-thread GODIVA): same, plus the background I/O thread
//!   prefetching whole snapshots ahead of processing.
//!
//! [`GodivaBackend`] implements both G and TG (construction flag).

use crate::error::{VizError, VizResult};
use godiva_core::{
    DeclaredSize, FieldKind, Gbo, GboConfig, GboStats, Key, RetryPolicy, UnitSession,
};
use godiva_genx::fields::{components, variable, VarKind};
use godiva_genx::manifest::{conn_dataset, points_dataset, var_dataset};
use godiva_genx::GenxConfig;
use godiva_mesh::{node_to_elem, TetMesh};
use godiva_obs::{MetricsRegistry, Tracer};
use godiva_platform::{Stopwatch, Storage};
use godiva_sdf::{ReadOptions, SdfFile};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// Per-block data one rendering pass consumes: the block mesh and a
/// node scalar derived from the pass's variable.
#[derive(Debug, Clone)]
pub struct BlockData {
    /// Global block id.
    pub block: usize,
    /// The block's local mesh.
    pub mesh: Arc<TetMesh>,
    /// One colour scalar per node (vector magnitude / element average
    /// where the variable is not already a node scalar).
    pub scalar: Arc<Vec<f64>>,
    /// The variable's raw buffer as stored (flat components for
    /// vectors, per-element values for restart quantities) — what the
    /// glyph filter consumes.
    pub raw: Arc<Vec<f64>>,
}

/// How a backend responds to a unit or block whose read ultimately
/// failed (after any [`RetryPolicy`] retries were exhausted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultMode {
    /// Propagate the failure and abort the run — the long-standing
    /// behavior, and still the default.
    #[default]
    Abort,
    /// Skip the failed file or snapshot, render whatever loaded, and
    /// record the skipped work in a [`FaultReport`].
    Degrade,
}

/// What one degraded run skipped and absorbed.
///
/// `blocks_skipped` is the authoritative list: every `(snapshot,
/// block)` pair that could not be rendered. `snapshots_skipped` is
/// derived convenience — the snapshots in which *no* block rendered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Snapshots that produced no renderable blocks at all.
    pub snapshots_skipped: Vec<usize>,
    /// Every `(snapshot, block)` pair skipped, in sorted order.
    pub blocks_skipped: Vec<(usize, usize)>,
    /// Units that needed at least one retry (from GBO stats; 0 for
    /// the direct backend).
    pub units_retried: u64,
    /// Read-function panics absorbed by the database (from GBO stats;
    /// 0 for the direct backend).
    pub panics_caught: u64,
}

impl FaultReport {
    /// `true` when nothing was skipped or retried.
    pub fn is_clean(&self) -> bool {
        self.snapshots_skipped.is_empty()
            && self.blocks_skipped.is_empty()
            && self.units_retried == 0
            && self.panics_caught == 0
    }
}

/// Skip bookkeeping shared by both backends (sets so a pass re-run in
/// a later op does not double-count a block).
#[derive(Debug, Default)]
struct SkipLog {
    blocks: BTreeSet<(usize, usize)>,
    snapshots: BTreeSet<usize>,
}

impl SkipLog {
    fn skip_block(&mut self, snapshot: usize, block: usize) {
        self.blocks.insert((snapshot, block));
    }

    fn skip_snapshot(&mut self, snapshot: usize) {
        self.snapshots.insert(snapshot);
    }

    fn report(&self, units_retried: u64, panics_caught: u64) -> FaultReport {
        FaultReport {
            snapshots_skipped: self.snapshots.iter().copied().collect(),
            blocks_skipped: self.blocks.iter().copied().collect(),
            units_retried,
            panics_caught,
        }
    }
}

/// How a Voyager run obtains snapshot data.
pub trait SnapshotSource {
    /// Called once with the snapshot processing order (prefetch hints).
    fn begin_run(&mut self, snapshots: &[usize]) -> VizResult<()>;
    /// Load everything one pass needs from one snapshot.
    fn load_pass(&mut self, snapshot: usize, var: &str) -> VizResult<Vec<BlockData>>;
    /// Snapshot processing completed; resources may be released.
    fn end_snapshot(&mut self, snapshot: usize) -> VizResult<()>;
    /// Cumulative *visible I/O time*: blocking reads + unit waits (§4.2).
    fn visible_io(&self) -> Duration;
    /// GODIVA statistics, if this source uses a GODIVA database.
    fn gbo_stats(&self) -> Option<GboStats> {
        None
    }
    /// What this run skipped and absorbed so far (empty unless the
    /// source runs under [`FaultMode::Degrade`] and faults occurred).
    fn fault_report(&self) -> FaultReport {
        FaultReport::default()
    }
    /// Cut an LSN-stamped point-in-time snapshot of the underlying
    /// database into `dir`. `None` when the source has no database.
    fn write_snapshot(
        &self,
        dir: &std::path::Path,
    ) -> Option<godiva_core::Result<godiva_core::SnapshotInfo>> {
        let _ = dir;
        None
    }
}

/// Build a tet mesh from the flat buffers stored in snapshot files.
fn mesh_from_buffers(points: &[f64], conn: &[i32]) -> VizResult<TetMesh> {
    if !points.len().is_multiple_of(3) || !conn.len().is_multiple_of(4) {
        return Err(VizError::Pipeline(format!(
            "bad buffer shapes: {} coords, {} connectivity entries",
            points.len(),
            conn.len()
        )));
    }
    let mesh = TetMesh {
        points: points.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect(),
        tets: conn
            .chunks_exact(4)
            .map(|t| [t[0] as u32, t[1] as u32, t[2] as u32, t[3] as u32])
            .collect(),
    };
    Ok(mesh)
}

/// Derive a per-node colour scalar from a variable's raw buffer.
fn to_node_scalar(mesh: &TetMesh, var: &str, raw: &[f64]) -> VizResult<Vec<f64>> {
    let kind = variable(var)
        .ok_or_else(|| VizError::Pipeline(format!("unknown variable '{var}'")))?
        .kind;
    match kind {
        VarKind::NodeScalar => {
            mesh.check_node_field(raw)?;
            Ok(raw.to_vec())
        }
        VarKind::NodeVector => {
            let comps = components(kind);
            if raw.len() != mesh.node_count() * comps {
                return Err(VizError::Pipeline(format!(
                    "vector '{var}': {} values for {} nodes",
                    raw.len(),
                    mesh.node_count()
                )));
            }
            Ok(raw
                .chunks_exact(comps)
                .map(|v| (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt())
                .collect())
        }
        VarKind::ElemScalar => {
            mesh.check_elem_field(raw)?;
            // Average incident element values onto nodes.
            let adj = node_to_elem(mesh);
            Ok((0..mesh.node_count() as u32)
                .map(|n| {
                    let es = adj.elems_of(n);
                    if es.is_empty() {
                        0.0
                    } else {
                        es.iter().map(|&e| raw[e as usize]).sum::<f64>() / es.len() as f64
                    }
                })
                .collect())
        }
    }
}

// ---------------------------------------------------------------------------
// DirectBackend — the paper's "O"
// ---------------------------------------------------------------------------

/// The original Voyager data path: every pass re-opens the snapshot
/// files and re-reads mesh and variable data for every block.
pub struct DirectBackend {
    storage: Arc<dyn Storage>,
    config: GenxConfig,
    read_options: ReadOptions,
    io: Stopwatch,
    fault_mode: FaultMode,
    skips: SkipLog,
}

impl DirectBackend {
    /// New direct reader over `storage`.
    pub fn new(storage: Arc<dyn Storage>, config: GenxConfig, read_options: ReadOptions) -> Self {
        DirectBackend {
            storage,
            config,
            read_options,
            io: Stopwatch::new(),
            fault_mode: FaultMode::Abort,
            skips: SkipLog::default(),
        }
    }

    /// Select what happens when a file or block fails to read.
    pub fn with_fault_mode(mut self, fault_mode: FaultMode) -> Self {
        self.fault_mode = fault_mode;
        self
    }

    /// Read one block's buffers, converting them to [`BlockData`].
    fn read_block(&mut self, file: &SdfFile, var: &str, b: usize) -> VizResult<BlockData> {
        self.io.start();
        let read = (|| -> VizResult<_> {
            let points: Vec<f64> = file.read(&points_dataset(b))?;
            let conn: Vec<i32> = file.read(&conn_dataset(b))?;
            let raw: Vec<f64> = file.read(&var_dataset(b, var))?;
            Ok((points, conn, raw))
        })();
        self.io.stop();
        let (points, conn, raw) = read?;
        // Interpreting the buffers is computation, not I/O.
        let mesh = mesh_from_buffers(&points, &conn)?;
        let scalar = to_node_scalar(&mesh, var, &raw)?;
        Ok(BlockData {
            block: b,
            mesh: Arc::new(mesh),
            scalar: Arc::new(scalar),
            raw: Arc::new(raw),
        })
    }
}

impl SnapshotSource for DirectBackend {
    fn begin_run(&mut self, _snapshots: &[usize]) -> VizResult<()> {
        Ok(())
    }

    fn load_pass(&mut self, snapshot: usize, var: &str) -> VizResult<Vec<BlockData>> {
        let degrade = self.fault_mode == FaultMode::Degrade;
        let mut out = Vec::with_capacity(self.config.blocks);
        for f in 0..self.config.files_per_snapshot {
            let path = self.config.file_path(snapshot, f);
            // Blocking reads on the calling thread; all of it is visible
            // I/O time in the paper's accounting.
            self.io.start();
            let file = SdfFile::open_with(self.storage.clone(), path, self.read_options.clone());
            self.io.stop();
            let file = match file {
                Ok(file) => file,
                Err(_) if degrade => {
                    // The whole file is unreadable: skip its blocks.
                    for b in self.config.blocks_in_file(f) {
                        self.skips.skip_block(snapshot, b);
                    }
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            for b in self.config.blocks_in_file(f) {
                match self.read_block(&file, var, b) {
                    Ok(data) => out.push(data),
                    // Pipeline errors (unknown variable, bad shapes) are
                    // bugs, not faults — they abort even under Degrade.
                    Err(VizError::Pipeline(m)) => return Err(VizError::Pipeline(m)),
                    Err(_) if degrade => self.skips.skip_block(snapshot, b),
                    Err(e) => return Err(e),
                }
            }
        }
        if degrade && out.is_empty() {
            self.skips.skip_snapshot(snapshot);
        }
        Ok(out)
    }

    fn end_snapshot(&mut self, _snapshot: usize) -> VizResult<()> {
        Ok(())
    }

    fn visible_io(&self) -> Duration {
        self.io.elapsed()
    }

    fn fault_report(&self) -> FaultReport {
        self.skips.report(0, 0)
    }
}

// ---------------------------------------------------------------------------
// GodivaBackend — the paper's "G" (single-thread) and "TG" (multi-thread)
// ---------------------------------------------------------------------------

/// A cached per-(block, variable) pair: derived node scalar + raw buffer.
type ScalarEntry = (Arc<Vec<f64>>, Arc<Vec<f64>>);

/// Unit granularity for the GODIVA backend (§3.2 lets developers pick).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Granularity {
    /// All files of one time-step snapshot form one unit — what Voyager
    /// uses in the paper.
    #[default]
    Snapshot,
    /// Each file is its own unit (finer prefetching granularity).
    File,
}

/// Construction options for [`GodivaBackend`].
#[derive(Debug, Clone)]
pub struct GodivaBackendOptions {
    /// Variables the test visualizes; the read functions read exactly
    /// these (plus mesh geometry).
    pub vars: Vec<String>,
    /// `true` = the paper's TG build (background I/O thread), `false` =
    /// its G build (reads happen inside `wait_unit`).
    pub background_io: bool,
    /// Number of I/O executor workers when `background_io` is on
    /// (1 = the paper's single background thread).
    pub io_threads: usize,
    /// GODIVA memory budget in bytes (paper: 384 MB).
    pub mem_limit: u64,
    /// Unit granularity.
    pub granularity: Granularity,
    /// `true` = batch mode (`delete_unit` after each snapshot), `false`
    /// = interactive mode (`finish_unit`, units stay cached).
    pub delete_after_use: bool,
    /// Eviction policy for finished units.
    pub eviction: godiva_core::EvictionPolicy,
    /// Blocks this backend is responsible for (`None` = all). The
    /// Apollo/Houston server partitions blocks across worker databases
    /// this way; each worker's read functions then only read its own
    /// blocks from the shared files.
    pub block_subset: Option<Vec<usize>>,
    /// Retry policy applied by the database to failing read functions.
    pub retry: RetryPolicy,
    /// What to do when a unit's read ultimately fails.
    pub fault_mode: FaultMode,
    /// Tracer handed to the database; disabled by default.
    pub tracer: Tracer,
    /// Metrics registry the database publishes its counters into.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Crash flight recorder handed to the database (`None` disables
    /// it). Defaults to a fresh default-capacity recorder.
    pub flight_recorder: Option<Arc<godiva_obs::FlightRecorder>>,
    /// Post-mortem dump destination override.
    pub postmortem_path: Option<std::path::PathBuf>,
    /// Second-tier spill cache for evicted units: evicted buffers are
    /// written to a checksummed cache file and revisits re-materialize
    /// from it instead of re-running the read callback. `None` (the
    /// default) keeps the paper's discard-on-evict behaviour.
    pub spill: Option<godiva_core::SpillConfig>,
    /// Directory for the database's write-ahead log; `None` (default)
    /// disables journaling. See [`godiva_core::GboConfig::wal_dir`].
    pub wal_dir: Option<std::path::PathBuf>,
    /// Journal flushing discipline when `wal_dir` is set.
    pub durability: godiva_core::Durability,
    /// Liveness watchdog interval handed to the database (see
    /// [`godiva_core::GboConfig::watchdog`]); `None` (default) disables
    /// it.
    pub watchdog: Option<std::time::Duration>,
}

impl GodivaBackendOptions {
    /// Batch-mode options over the given variables.
    pub fn batch(vars: Vec<String>, background_io: bool, mem_limit: u64) -> Self {
        GodivaBackendOptions {
            vars,
            background_io,
            io_threads: 1,
            mem_limit,
            granularity: Granularity::Snapshot,
            delete_after_use: true,
            eviction: godiva_core::EvictionPolicy::Lru,
            block_subset: None,
            retry: RetryPolicy::none(),
            fault_mode: FaultMode::Abort,
            tracer: Tracer::disabled(),
            metrics: None,
            flight_recorder: Some(Arc::new(godiva_obs::FlightRecorder::default())),
            postmortem_path: None,
            spill: None,
            wal_dir: None,
            durability: godiva_core::Durability::default(),
            watchdog: None,
        }
    }

    /// Interactive-mode options (units finish instead of being deleted).
    pub fn interactive(vars: Vec<String>, mem_limit: u64) -> Self {
        GodivaBackendOptions {
            delete_after_use: false,
            ..Self::batch(vars, false, mem_limit)
        }
    }
}

/// Voyager's data path through the GODIVA database.
pub struct GodivaBackend {
    db: Gbo,
    storage: Arc<dyn Storage>,
    config: GenxConfig,
    read_options: ReadOptions,
    vars: Vec<String>,
    /// Blocks this backend owns (all of them unless partitioned).
    blocks: Vec<usize>,
    granularity: Granularity,
    io: Stopwatch,
    /// Snapshot whose caches below are valid.
    current: Option<usize>,
    mesh_cache: HashMap<usize, Arc<TetMesh>>,
    scalar_cache: HashMap<(usize, String), ScalarEntry>,
    /// Delete units after processing (batch mode) or keep them cached
    /// for revisits (interactive mode).
    delete_after_use: bool,
    fault_mode: FaultMode,
    /// Units whose read ultimately failed (Degrade mode only).
    failed_units: HashSet<String>,
    skips: SkipLog,
}

/// The record type name used in the GODIVA database.
const BLOCK_TYPE: &str = "genx_block";

/// Commit the block schema on the database itself, outside any read
/// function. A warm restart ([`GodivaBackend::open_resuming`])
/// re-materializes spilled records *before* any read callback runs, and
/// restoring a record requires its committed type — so the schema must
/// not live only inside the callbacks. Definitions are idempotent, so
/// the callbacks re-declaring them later is fine.
fn define_block_schema_db(db: &Gbo, vars: &[String]) -> godiva_core::Result<()> {
    db.define_field("snapshot", FieldKind::I64, DeclaredSize::Known(8))?;
    db.define_field("block", FieldKind::I64, DeclaredSize::Known(8))?;
    db.define_field("points", FieldKind::F64, DeclaredSize::Unknown)?;
    db.define_field("conn", FieldKind::I32, DeclaredSize::Unknown)?;
    for v in vars {
        db.define_field(v, FieldKind::F64, DeclaredSize::Unknown)?;
    }
    db.define_record(BLOCK_TYPE, 2)?;
    db.insert_field(BLOCK_TYPE, "snapshot", true)?;
    db.insert_field(BLOCK_TYPE, "block", true)?;
    db.insert_field(BLOCK_TYPE, "points", false)?;
    db.insert_field(BLOCK_TYPE, "conn", false)?;
    for v in vars {
        db.insert_field(BLOCK_TYPE, v, false)?;
    }
    db.commit_record_type(BLOCK_TYPE)
}

fn define_block_schema(s: &UnitSession, vars: &[String]) -> godiva_core::Result<()> {
    s.define_field("snapshot", FieldKind::I64, DeclaredSize::Known(8))?;
    s.define_field("block", FieldKind::I64, DeclaredSize::Known(8))?;
    s.define_field("points", FieldKind::F64, DeclaredSize::Unknown)?;
    s.define_field("conn", FieldKind::I32, DeclaredSize::Unknown)?;
    for v in vars {
        s.define_field(v, FieldKind::F64, DeclaredSize::Unknown)?;
    }
    s.define_record(BLOCK_TYPE, 2)?;
    s.insert_field(BLOCK_TYPE, "snapshot", true)?;
    s.insert_field(BLOCK_TYPE, "block", true)?;
    s.insert_field(BLOCK_TYPE, "points", false)?;
    s.insert_field(BLOCK_TYPE, "conn", false)?;
    for v in vars {
        s.insert_field(BLOCK_TYPE, v, false)?;
    }
    s.commit_record_type(BLOCK_TYPE)
}

/// Read the blocks of one file of one snapshot into the database — the
/// developer-supplied read function of this application.
#[allow(clippy::too_many_arguments)]
fn read_file_into_db(
    session: &UnitSession,
    storage: &Arc<dyn Storage>,
    read_options: &ReadOptions,
    config: &GenxConfig,
    vars: &[String],
    blocks: &[usize],
    snapshot: usize,
    file_index: usize,
) -> godiva_core::Result<()> {
    define_block_schema(session, vars)?;
    // Skip files none of whose blocks belong to this database — a
    // partitioned (Houston) worker never even opens them.
    let wanted: Vec<usize> = config
        .blocks_in_file(file_index)
        .filter(|b| blocks.contains(b))
        .collect();
    if wanted.is_empty() {
        return Ok(());
    }
    let path = config.file_path(snapshot, file_index);
    // Preserve the io::ErrorKind so the database's retry policy can
    // tell transient faults from permanent ones; format-level errors
    // (bad magic, checksum mismatch, …) stay permanent `UnitError`s.
    let to_db_err = |e: godiva_sdf::SdfError| match e {
        godiva_sdf::SdfError::Io(io) => godiva_core::GodivaError::Io {
            kind: io.kind(),
            message: format!("{path}: {io}"),
        },
        other => godiva_core::GodivaError::UnitError(format!("{path}: {other}")),
    };
    let file = SdfFile::open_with(storage.clone(), path.clone(), read_options.clone())
        .map_err(to_db_err)?;
    for b in wanted {
        let rec = session.new_record(BLOCK_TYPE)?;
        rec.set_i64("snapshot", vec![snapshot as i64])?;
        rec.set_i64("block", vec![b as i64])?;
        let points: Vec<f64> = file.read(&points_dataset(b)).map_err(to_db_err)?;
        rec.set_f64("points", points)?;
        let conn: Vec<i32> = file.read(&conn_dataset(b)).map_err(to_db_err)?;
        rec.set_i32("conn", conn)?;
        for v in vars {
            let raw: Vec<f64> = file.read(&var_dataset(b, v)).map_err(to_db_err)?;
            rec.set_f64(v, raw)?;
        }
        rec.commit()?;
    }
    Ok(())
}

impl GodivaBackend {
    /// Create a GODIVA-backed reader (cold start; any existing WAL in
    /// `options.wal_dir` is superseded by a fresh log).
    pub fn new(
        storage: Arc<dyn Storage>,
        config: GenxConfig,
        read_options: ReadOptions,
        options: GodivaBackendOptions,
    ) -> Self {
        Self::build(storage, config, read_options, options, false)
            .expect("cold start is infallible")
    }

    /// Create a GODIVA-backed reader by **recovering** from the WAL in
    /// `options.wal_dir`: journaled units re-enter the table and
    /// surviving spill frames are re-adopted, so revisits after a crash
    /// re-materialize from disk instead of re-running read callbacks.
    pub fn open_resuming(
        storage: Arc<dyn Storage>,
        config: GenxConfig,
        read_options: ReadOptions,
        options: GodivaBackendOptions,
    ) -> VizResult<Self> {
        Self::build(storage, config, read_options, options, true)
    }

    fn build(
        storage: Arc<dyn Storage>,
        config: GenxConfig,
        read_options: ReadOptions,
        options: GodivaBackendOptions,
        resume: bool,
    ) -> VizResult<Self> {
        let gbo_config = GboConfig {
            mem_limit: options.mem_limit,
            background_io: options.background_io,
            io_threads: options.io_threads,
            scheduler: Default::default(),
            eviction: options.eviction,
            retry: options.retry,
            tracer: options.tracer,
            metrics: options.metrics,
            flight_recorder: options.flight_recorder,
            postmortem_path: options.postmortem_path,
            spill: options.spill,
            wal_dir: options.wal_dir,
            durability: options.durability,
            watchdog: options.watchdog,
        };
        let db = if resume {
            Gbo::open_recovering(gbo_config)?
        } else {
            Gbo::with_config(gbo_config)
        };
        // Commit the block schema before any wait: spill restore (and a
        // warm restart in particular) needs the committed type.
        define_block_schema_db(&db, &options.vars)?;
        let blocks = options
            .block_subset
            .unwrap_or_else(|| (0..config.blocks).collect());
        Ok(GodivaBackend {
            db,
            storage,
            config,
            read_options,
            vars: options.vars,
            blocks,
            granularity: options.granularity,
            io: Stopwatch::new(),
            current: None,
            mesh_cache: HashMap::new(),
            scalar_cache: HashMap::new(),
            delete_after_use: options.delete_after_use,
            fault_mode: options.fault_mode,
            failed_units: HashSet::new(),
            skips: SkipLog::default(),
        })
    }

    /// Access the underlying database (for stats and tests).
    pub fn db(&self) -> &Gbo {
        &self.db
    }

    fn unit_names(&self, snapshot: usize) -> Vec<String> {
        match self.granularity {
            Granularity::Snapshot => vec![self.config.snapshot_name(snapshot)],
            Granularity::File => (0..self.config.files_per_snapshot)
                .map(|f| self.config.file_path(snapshot, f))
                .collect(),
        }
    }

    /// The unit whose read function carries `block` for `snapshot`.
    fn unit_of_block(&self, snapshot: usize, block: usize) -> String {
        match self.granularity {
            Granularity::Snapshot => self.config.snapshot_name(snapshot),
            Granularity::File => {
                let f = self.config.file_of_block(block);
                self.config.file_path(snapshot, f)
            }
        }
    }

    fn make_reader(
        &self,
        snapshot: usize,
        file_index: Option<usize>,
    ) -> impl Fn(&UnitSession) -> godiva_core::Result<()> + Send + Sync + 'static {
        let storage = self.storage.clone();
        let read_options = self.read_options.clone();
        let config = self.config.clone();
        let vars = self.vars.clone();
        let blocks = self.blocks.clone();
        move |session: &UnitSession| match file_index {
            Some(f) => read_file_into_db(
                session,
                &storage,
                &read_options,
                &config,
                &vars,
                &blocks,
                snapshot,
                f,
            ),
            None => {
                for f in 0..config.files_per_snapshot {
                    read_file_into_db(
                        session,
                        &storage,
                        &read_options,
                        &config,
                        &vars,
                        &blocks,
                        snapshot,
                        f,
                    )?;
                }
                Ok(())
            }
        }
    }

    /// Wait for a snapshot's unit(s), timing the block as visible I/O.
    fn ensure_snapshot(&mut self, snapshot: usize) -> VizResult<()> {
        if self.current == Some(snapshot) {
            return Ok(());
        }
        // Stale caches from a previous snapshot.
        self.mesh_cache.clear();
        self.scalar_cache.clear();
        let names = self.unit_names(snapshot);
        self.io.start();
        let mut result = Ok(());
        for name in &names {
            match self.db.wait_unit(name) {
                Ok(()) => {}
                Err(_) if self.fault_mode == FaultMode::Degrade => {
                    // The unit failed for good (retries exhausted);
                    // remember it so its blocks are skipped, and keep
                    // waiting for the snapshot's healthy units.
                    self.failed_units.insert(name.clone());
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        self.io.stop();
        result?;
        self.current = Some(snapshot);
        Ok(())
    }

    fn block_mesh(&mut self, snapshot: usize, block: usize) -> VizResult<Arc<TetMesh>> {
        if let Some(m) = self.mesh_cache.get(&block) {
            return Ok(Arc::clone(m));
        }
        let keys = [Key::from(snapshot as i64), Key::from(block as i64)];
        let points = self.db.get_field_buffer(BLOCK_TYPE, "points", &keys)?;
        let conn = self.db.get_field_buffer(BLOCK_TYPE, "conn", &keys)?;
        let mesh = Arc::new(mesh_from_buffers(&points.f64s()?, &conn.i32s()?)?);
        self.mesh_cache.insert(block, Arc::clone(&mesh));
        Ok(mesh)
    }
}

impl SnapshotSource for GodivaBackend {
    fn begin_run(&mut self, snapshots: &[usize]) -> VizResult<()> {
        // Batch mode: announce every unit up front, in processing order
        // (§3.2 — "notify the GODIVA database about all the units to be
        // read … in the order that they are going to be processed").
        // Browsing traces visit snapshots repeatedly; each unit is
        // announced once, at its first visit.
        let mut seen = HashSet::new();
        for &s in snapshots {
            if !seen.insert(s) {
                continue;
            }
            match self.granularity {
                Granularity::Snapshot => {
                    self.db
                        .add_unit(&self.config.snapshot_name(s), self.make_reader(s, None))?;
                }
                Granularity::File => {
                    for f in 0..self.config.files_per_snapshot {
                        self.db
                            .add_unit(&self.config.file_path(s, f), self.make_reader(s, Some(f)))?;
                    }
                }
            }
        }
        Ok(())
    }

    fn load_pass(&mut self, snapshot: usize, var: &str) -> VizResult<Vec<BlockData>> {
        self.ensure_snapshot(snapshot)?;
        let degrade = self.fault_mode == FaultMode::Degrade;
        let mut out = Vec::with_capacity(self.blocks.len());
        for b in self.blocks.clone() {
            if degrade && self.failed_units.contains(&self.unit_of_block(snapshot, b)) {
                self.skips.skip_block(snapshot, b);
                continue;
            }
            let mesh = self.block_mesh(snapshot, b)?;
            let key = (b, var.to_string());
            let (scalar, raw) = match self.scalar_cache.get(&key) {
                Some(pair) => pair.clone(),
                None => {
                    let keys = [Key::from(snapshot as i64), Key::from(b as i64)];
                    let buf = self.db.get_field_buffer(BLOCK_TYPE, var, &keys)?;
                    let raw = Arc::new(buf.f64s()?.to_vec());
                    let s = Arc::new(to_node_scalar(&mesh, var, &raw)?);
                    self.scalar_cache
                        .insert(key, (Arc::clone(&s), Arc::clone(&raw)));
                    (s, raw)
                }
            };
            out.push(BlockData {
                block: b,
                mesh,
                scalar,
                raw,
            });
        }
        if degrade && out.is_empty() && !self.blocks.is_empty() {
            self.skips.skip_snapshot(snapshot);
        }
        Ok(out)
    }

    fn end_snapshot(&mut self, snapshot: usize) -> VizResult<()> {
        for name in self.unit_names(snapshot) {
            if self.fault_mode == FaultMode::Degrade && self.failed_units.contains(&name) {
                // The unit never loaded; delete it so partial records
                // are dropped. An error here is not worth aborting a
                // degraded run — the skip is already recorded.
                let _ = self.db.delete_unit(&name);
            } else if self.delete_after_use {
                // Batch mode knows the data will not be needed again.
                self.db.delete_unit(&name)?;
            } else {
                // Interactive mode hopes for revisits (§3.2).
                self.db.finish_unit(&name)?;
            }
        }
        if self.current == Some(snapshot) {
            self.current = None;
            self.mesh_cache.clear();
            self.scalar_cache.clear();
        }
        Ok(())
    }

    fn visible_io(&self) -> Duration {
        self.io.elapsed()
    }

    fn gbo_stats(&self) -> Option<GboStats> {
        Some(self.db.stats())
    }

    fn fault_report(&self) -> FaultReport {
        let stats = self.db.stats();
        self.skips.report(stats.units_retried, stats.panics_caught)
    }

    fn write_snapshot(
        &self,
        dir: &std::path::Path,
    ) -> Option<godiva_core::Result<godiva_core::SnapshotInfo>> {
        Some(self.db.snapshot(dir))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use godiva_platform::MemFs;

    fn dataset() -> (Arc<dyn Storage>, GenxConfig) {
        let fs = Arc::new(MemFs::new());
        let config = GenxConfig::tiny();
        godiva_genx::generate(fs.as_ref(), &config).unwrap();
        (fs as Arc<dyn Storage>, config)
    }

    fn godiva_backend(
        storage: Arc<dyn Storage>,
        config: GenxConfig,
        background: bool,
        granularity: Granularity,
    ) -> GodivaBackend {
        let mut options = GodivaBackendOptions::batch(
            vec!["stress_avg".into(), "velocity".into(), "burn_rate".into()],
            background,
            64 << 20,
        );
        options.granularity = granularity;
        GodivaBackend::new(storage, config, ReadOptions::new(), options)
    }

    #[test]
    fn direct_backend_loads_all_blocks() {
        let (fs, config) = dataset();
        let blocks = config.blocks;
        let mut be = DirectBackend::new(fs, config, ReadOptions::new());
        be.begin_run(&[0, 1]).unwrap();
        let data = be.load_pass(0, "stress_avg").unwrap();
        assert_eq!(data.len(), blocks);
        for d in &data {
            d.mesh.validate().unwrap();
            assert_eq!(d.scalar.len(), d.mesh.node_count());
        }
        let _ = be.visible_io(); // accumulated, though MemFs is instant
    }

    #[test]
    fn godiva_backend_matches_direct() {
        let (fs, config) = dataset();
        let mut direct = DirectBackend::new(fs.clone(), config.clone(), ReadOptions::new());
        let mut godiva = godiva_backend(fs, config, false, Granularity::Snapshot);
        direct.begin_run(&[0]).unwrap();
        godiva.begin_run(&[0]).unwrap();
        for var in ["stress_avg", "velocity", "burn_rate"] {
            let a = direct.load_pass(0, var).unwrap();
            let b = godiva.load_pass(0, var).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.block, y.block);
                assert_eq!(*x.mesh, *y.mesh, "meshes differ in block {}", x.block);
                assert_eq!(*x.scalar, *y.scalar, "scalars differ in block {}", x.block);
            }
        }
        godiva.end_snapshot(0).unwrap();
    }

    #[test]
    fn godiva_backend_reads_less_than_direct() {
        let (fs, config) = dataset();
        // Fresh stores to compare byte counts.
        let direct_fs = Arc::new(MemFs::new());
        let godiva_fs = Arc::new(MemFs::new());
        for p in fs.list("") {
            let data = fs.read(&p).unwrap();
            direct_fs.write(&p, &data).unwrap();
            godiva_fs.write(&p, &data).unwrap();
        }
        direct_fs.reset_stats();
        godiva_fs.reset_stats();

        let vars = ["stress_avg", "velocity"];
        let mut direct =
            DirectBackend::new(direct_fs.clone() as _, config.clone(), ReadOptions::new());
        direct.begin_run(&[0]).unwrap();
        for v in vars {
            direct.load_pass(0, v).unwrap();
        }
        let mut godiva = GodivaBackend::new(
            godiva_fs.clone() as _,
            config,
            ReadOptions::new(),
            GodivaBackendOptions::batch(
                vars.iter().map(|s| s.to_string()).collect(),
                false,
                64 << 20,
            ),
        );
        godiva.begin_run(&[0]).unwrap();
        for v in vars {
            godiva.load_pass(0, v).unwrap();
        }
        let d = direct_fs.stats().bytes_read;
        let g = godiva_fs.stats().bytes_read;
        assert!(
            g < d,
            "GODIVA must eliminate redundant reads: {g} vs {d} bytes"
        );
    }

    #[test]
    fn multithread_backend_prefetches() {
        let (fs, config) = dataset();
        let mut be = godiva_backend(fs, config.clone(), true, Granularity::Snapshot);
        let snaps: Vec<usize> = (0..config.snapshots).collect();
        be.begin_run(&snaps).unwrap();
        for &s in &snaps {
            let data = be.load_pass(s, "stress_avg").unwrap();
            assert_eq!(data.len(), config.blocks);
            be.end_snapshot(s).unwrap();
        }
        let stats = be.gbo_stats().unwrap();
        assert_eq!(stats.units_read as usize, config.snapshots);
        assert!(stats.background_reads > 0, "prefetching must happen");
    }

    #[test]
    fn file_granularity_works() {
        let (fs, config) = dataset();
        let mut be = godiva_backend(fs, config.clone(), true, Granularity::File);
        be.begin_run(&[0, 1]).unwrap();
        for s in [0, 1] {
            let data = be.load_pass(s, "velocity").unwrap();
            assert_eq!(data.len(), config.blocks);
            be.end_snapshot(s).unwrap();
        }
        let stats = be.gbo_stats().unwrap();
        assert_eq!(
            stats.units_read as usize,
            2 * config.files_per_snapshot,
            "one unit per file"
        );
    }

    #[test]
    fn elem_variable_converted_to_node_scalar() {
        let (fs, config) = dataset();
        let mut be = DirectBackend::new(fs, config, ReadOptions::new());
        let data = be.load_pass(0, "burn_rate").unwrap();
        for d in &data {
            assert_eq!(d.scalar.len(), d.mesh.node_count());
            assert!(d.scalar.iter().all(|v| v.is_finite() && *v > 0.0));
        }
    }

    #[test]
    fn vector_variable_becomes_magnitude() {
        let (fs, config) = dataset();
        let mut be = DirectBackend::new(fs, config, ReadOptions::new());
        let data = be.load_pass(1, "velocity").unwrap();
        for d in &data {
            assert!(d.scalar.iter().all(|v| *v >= 0.0), "magnitudes are ≥ 0");
        }
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let (fs, config) = dataset();
        let mut be = DirectBackend::new(fs, config, ReadOptions::new());
        assert!(be.load_pass(0, "bogus_var").is_err());
    }

    #[test]
    fn interactive_mode_keeps_units_for_revisit() {
        let (fs, config) = dataset();
        let mut be = GodivaBackend::new(
            fs,
            config.clone(),
            ReadOptions::new(),
            GodivaBackendOptions::interactive(vec!["stress_avg".into()], 64 << 20),
        );
        be.begin_run(&[0, 1]).unwrap();
        be.load_pass(0, "stress_avg").unwrap();
        be.end_snapshot(0).unwrap();
        be.load_pass(1, "stress_avg").unwrap();
        be.end_snapshot(1).unwrap();
        // Revisit snapshot 0: cache hit, no additional read.
        let before = be.gbo_stats().unwrap();
        be.load_pass(0, "stress_avg").unwrap();
        be.end_snapshot(0).unwrap();
        let after = be.gbo_stats().unwrap();
        assert_eq!(before.blocking_reads, after.blocking_reads);
        assert!(after.cache_hits > before.cache_hits);
    }
}
