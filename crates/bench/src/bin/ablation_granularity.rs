//! Ablation: processing-unit granularity (§3.2).
//!
//! The paper lets developers pick the unit: all files of a snapshot
//! (what Voyager uses), one file, or finer. This experiment runs the TG
//! build with snapshot-units vs file-units and compares times and unit
//! traffic.

use godiva_bench::table::mean_ci;
use godiva_bench::{repeat, ExperimentEnv, HarnessArgs, Table};
use godiva_platform::Platform;
use godiva_viz::{Granularity, Mode, TestSpec};

fn main() {
    let args = HarnessArgs::parse();
    let genx = args.genx();
    println!(
        "== Ablation: unit granularity (TG build, Engle platform) ==\n\
         {} snapshots x {} files, scale {}\n",
        args.snapshots, genx.files_per_snapshot, args.scale
    );
    let env = ExperimentEnv::prepare(Platform::engle(args.scale), &genx);

    let mut table = Table::new(&[
        "test",
        "granularity",
        "computation (s)",
        "visible I/O (s)",
        "total (s)",
        "units read",
    ]);
    for spec in TestSpec::all() {
        for (label, granularity) in [
            ("snapshot", Granularity::Snapshot),
            ("file", Granularity::File),
        ] {
            let rr = repeat(&env, args.repeats, || {
                let mut opts = env.voyager_options(spec.clone(), Mode::GodivaMulti);
                opts.granularity = granularity;
                opts
            });
            let units: u64 = rr
                .runs
                .last()
                .and_then(|r| r.report.gbo_stats.as_ref())
                .map(|s| s.units_read)
                .unwrap_or(0);
            table.row(&[
                spec.name.clone(),
                label.to_string(),
                mean_ci(rr.computation),
                mean_ci(rr.visible_io),
                mean_ci(rr.total),
                units.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "file-granularity units let processing start after the first file of a\n\
         snapshot is resident and evict in smaller pieces; snapshot units\n\
         amortize queue overhead. The paper predicts both work, with the choice\n\
         belonging to the developer (§3.2)."
    );
}
