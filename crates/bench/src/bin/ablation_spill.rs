//! Ablation: spill-tier budget (DESIGN.md §5f, beyond the paper).
//!
//! The 2004 library discards evicted buffers outright, so every revisit
//! of an evicted unit re-runs the developer's read function against the
//! dataset. The spill tier keeps a checksummed copy of evicted units in
//! a local cache directory and re-materializes revisits from it with one
//! sequential read. This sweep replays a back-and-forth browsing trace
//! (snapshots stay cached via `finishUnit`, §3.2) through the three
//! paper pipelines under a deliberately tight memory budget (~2.5
//! units, so revisits find their snapshot evicted) and varies the spill
//! budget from "off" to "everything fits", reporting how many callback
//! bytes the dataset storage still serves beyond the one unavoidable
//! cold load per snapshot.
//!
//! The spill directory lives on its own simulated disk (same model as
//! the platform's) so the dataset storage's counters measure developer
//! callback traffic only; spill writes are free there, like the
//! platform's own writes.

use godiva_bench::table::mean_ci;
use godiva_bench::{measure, repeat, ExperimentEnv, HarnessArgs, JsonWriter, Table};
use godiva_core::SpillConfig;
use godiva_platform::{DiskModel, Platform, SimFs, Storage};
use godiva_viz::{Mode, TestSpec, VoyagerOptions};
use std::sync::Arc;

/// Spill budget as a multiple of one unit's bytes (`None` = spill off).
const BUDGETS: [Option<f64>; 3] = [None, Some(1.5), Some(64.0)];

fn budget_label(factor: Option<f64>) -> String {
    match factor {
        None => "off".into(),
        Some(f) => format!("{f:.1}x unit"),
    }
}

/// Two sweeps over the time series: 0..N then 0..N again. Under a
/// ~2-unit budget every second-pass visit finds its snapshot evicted —
/// the pure "eviction re-read waste" pattern.
fn trace(snapshots: usize) -> Vec<usize> {
    (0..snapshots).chain(0..snapshots).collect()
}

fn main() {
    let args = HarnessArgs::parse();
    let genx = args.genx();
    let env = ExperimentEnv::prepare(Platform::turing(args.scale), &genx);
    let visits = trace(args.snapshots);
    println!(
        "== Ablation: spill-tier budget (Turing node, G build, browsing trace) ==\n\
         {} visits over {} snapshots, {} blocks, scale {}\n",
        visits.len(),
        args.snapshots,
        genx.blocks,
        args.scale
    );

    let base_opts = |spec: &TestSpec| -> VoyagerOptions {
        let mut opts = env.voyager_options(spec.clone(), Mode::GodivaSingle);
        opts.snapshots = visits.clone();
        // Interactive retirement: revisits are the point of this sweep.
        opts.delete_after_use = Some(false);
        opts
    };

    let mut table = Table::new(&[
        "test",
        "spill budget",
        "total (s)",
        "visible I/O (s)",
        "re-read MB",
        "hits",
        "misses",
        "writes",
    ]);
    let mut ample_reread_bytes = 0u64;
    let mut json = args.json.as_ref().map(|_| {
        let mut w = JsonWriter::new("ablation_spill");
        w.int_field("snapshots", args.snapshots as u64);
        w.int_field("repeats", args.repeats as u64);
        w.num_field("scale", args.scale);
        w.begin_array("arms");
        w
    });
    for spec in TestSpec::all() {
        // Calibrate per pipeline: an unbounded-memory run never evicts,
        // so its storage traffic is one cold load of every snapshot and
        // its images are the reference output.
        let (cold_bytes, reference_checksums, unit_bytes) = {
            let mut opts = base_opts(&spec);
            opts.mem_limit = 1 << 40;
            let m = measure(&env, opts);
            let stats = m.report.gbo_stats.as_ref().expect("godiva stats");
            let unit = stats.bytes_allocated / args.snapshots as u64;
            (m.bytes_read, m.report.image_checksums.clone(), unit)
        };
        let mem_limit = unit_bytes * 5 / 2; // ~2.5 units: forces re-reads

        for factor in BUDGETS {
            let spill_budget = factor.map(|f| (unit_bytes as f64 * f) as u64);
            let rr = repeat(&env, args.repeats, || {
                let mut opts = base_opts(&spec);
                opts.mem_limit = mem_limit;
                opts.spill = spill_budget.map(|budget| SpillConfig {
                    // Fresh cache disk per run: same device model as the
                    // platform, so restores pay seek + stream time.
                    storage: Arc::new(
                        SimFs::new(DiskModel::cluster_scsi().scaled(args.scale)).with_free_writes(),
                    ) as Arc<dyn Storage>,
                    dir: "spill".into(),
                    budget,
                });
                opts
            });
            let (mut reread, mut hits, mut misses, mut writes) = (0u64, 0u64, 0u64, 0u64);
            for run in &rr.runs {
                assert_eq!(
                    reference_checksums,
                    run.report.image_checksums,
                    "{}: images diverged at spill budget {}",
                    spec.name,
                    budget_label(factor)
                );
                let stats = run.report.gbo_stats.as_ref().expect("godiva stats");
                assert_eq!(stats.spill_corrupt, 0, "unexpected spill corruption");
                reread += run.bytes_read.saturating_sub(cold_bytes);
                hits += stats.spill_hits;
                misses += stats.spill_misses;
                writes += stats.spill_writes;
            }
            let runs = rr.runs.len() as u64;
            if factor.is_some_and(|f| f > 2.0) {
                ample_reread_bytes += reread / runs;
            }
            table.row(&[
                spec.name.clone(),
                budget_label(factor),
                mean_ci(rr.total),
                mean_ci(rr.visible_io),
                format!("{:.2}", (reread / runs) as f64 / (1024.0 * 1024.0)),
                (hits / runs).to_string(),
                (misses / runs).to_string(),
                (writes / runs).to_string(),
            ]);
            if let Some(w) = &mut json {
                w.begin_object(None);
                w.str_field("test", &spec.name);
                w.str_field("budget", &budget_label(factor));
                w.num_field("total_s", rr.total.mean);
                w.num_field("ci95_s", rr.total.ci95);
                w.num_field("visible_io_s", rr.visible_io.mean);
                w.int_field("reread_bytes", reread / runs);
                w.int_field("hits", hits / runs);
                w.int_field("misses", misses / runs);
                w.int_field("writes", writes / runs);
                w.end_object();
            }
        }
    }
    println!("{}", table.render());
    if let (Some(mut w), Some(path)) = (json, &args.json) {
        w.end_array();
        w.write_to(path);
    }
    println!(
        "expectation: with spill off, every revisit of an evicted snapshot re-reads\n\
         the dataset ('re-read MB' > 0); at an ample budget the spill serves those\n\
         revisits and callback re-reads drop to ~0, with identical images throughout."
    );
    assert_eq!(
        ample_reread_bytes, 0,
        "ample spill budget should eliminate callback re-reads"
    );
}
