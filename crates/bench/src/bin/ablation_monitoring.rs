//! Ablation: cost of the always-on monitoring stack.
//!
//! PR 2 established that JSONL event tracing stays within ~5 % of an
//! uninstrumented run (`ablation_trace_overhead`). This experiment
//! measures what the *monitoring* additions stack on top of that
//! tracing baseline, on the same fig3a-style TG runs (Engle, `simple`
//! test):
//!
//! - **monitoring off** — no tracer, no flight recorder, no metrics:
//!   the absolute floor,
//! - **tracing (JSONL file)** — the PR 2 baseline every overhead below
//!   is judged against,
//! - **+ flight recorder** — the default-on crash ring teed off the
//!   tracer (one extra lock + clone per event),
//! - **+ metrics + snapshotter** — a live registry wired into the
//!   database plus the 250 ms gauge snapshotter (and, with
//!   `--metrics-listen ADDR`, the HTTP exporter serving scrapes during
//!   the runs),
//! - **+ health engine** — the full stack plus the sliding-window
//!   health engine (window frames each tick, SLO evaluation, burn-rate
//!   state machine) and the liveness watchdog on the database.
//!
//! Acceptance: the full monitoring stack — health engine included —
//! within 5 % of the tracing baseline.

use godiva_bench::{percent, repeat, ExperimentEnv, HarnessArgs, Table};
use godiva_obs::{
    FlightRecorder, HealthConfig, HealthEngine, JsonlSink, MetricsRegistry, MetricsServer,
    Snapshotter, Tracer, DEFAULT_SNAPSHOT_INTERVAL,
};
use godiva_platform::Platform;
use godiva_viz::{Mode, TestSpec, VoyagerOptions};
use std::sync::Arc;

fn main() {
    let args = HarnessArgs::parse();
    let genx = args.genx();
    let env = ExperimentEnv::prepare(Platform::engle(args.scale), &genx);
    println!(
        "== Ablation: monitoring overhead (TG, simple test, Engle) ==\n\
         {} snapshots, {} repeats, scale {}\n",
        args.snapshots, args.repeats, args.scale
    );

    let trace_path = std::env::temp_dir().join(format!(
        "godiva-monitoring-overhead-{}.jsonl",
        std::process::id()
    ));
    let file_tracer = {
        let path = trace_path.clone();
        move || {
            Tracer::new(Arc::new(
                JsonlSink::create(&path).expect("create trace file"),
            ))
        }
    };

    // The live-export config shares one registry across its repeats; the
    // snapshotter and (optional) HTTP listener run for that whole block,
    // as they would in production.
    let registry = Arc::new(MetricsRegistry::new());
    let server = args.metrics_listen.as_ref().map(|addr| {
        let server =
            MetricsServer::bind(addr.as_str(), registry.clone()).expect("bind metrics listener");
        println!(
            "serving live metrics on http://{}/metrics\n",
            server.local_addr()
        );
        server
    });

    type Configure = Box<dyn Fn(&mut VoyagerOptions)>;
    let configs: Vec<(&str, Configure)> = vec![
        (
            "monitoring off",
            Box::new(|opts: &mut VoyagerOptions| {
                opts.tracer = Tracer::disabled();
                opts.flight_recorder = None;
            }),
        ),
        (
            "tracing (JSONL file)",
            Box::new({
                let file_tracer = file_tracer.clone();
                move |opts: &mut VoyagerOptions| {
                    opts.tracer = file_tracer();
                    opts.flight_recorder = None;
                }
            }),
        ),
        (
            "+ flight recorder",
            Box::new({
                let file_tracer = file_tracer.clone();
                move |opts: &mut VoyagerOptions| {
                    opts.tracer = file_tracer();
                    opts.flight_recorder = Some(Arc::new(FlightRecorder::default()));
                }
            }),
        ),
        (
            "+ metrics + snapshotter",
            Box::new({
                let registry = registry.clone();
                let file_tracer = file_tracer.clone();
                move |opts: &mut VoyagerOptions| {
                    opts.tracer = file_tracer();
                    opts.flight_recorder = Some(Arc::new(FlightRecorder::default()));
                    opts.metrics = Some(registry.clone());
                }
            }),
        ),
        (
            "+ health engine",
            Box::new({
                let registry = registry.clone();
                move |opts: &mut VoyagerOptions| {
                    opts.tracer = file_tracer();
                    opts.flight_recorder = Some(Arc::new(FlightRecorder::default()));
                    opts.metrics = Some(registry.clone());
                    opts.watchdog = Some(std::time::Duration::from_secs(2));
                }
            }),
        ),
    ];

    let mut table = Table::new(&[
        "configuration",
        "total (s)",
        "visible I/O (s)",
        "vs tracing",
    ]);
    let mut floor: Option<f64> = None;
    let mut tracing_base: Option<f64> = None;
    let mut full_stack: Option<f64> = None;
    for (i, (label, configure)) in configs.iter().enumerate() {
        // The snapshotter samples the shared registry for the duration
        // of the live-export block only, like a real monitored run.
        let snapshotter = (i >= 3).then(|| {
            Snapshotter::spawn(
                registry.clone(),
                Tracer::new(Arc::new(JsonlSink::new(std::io::sink()))),
                DEFAULT_SNAPSHOT_INTERVAL,
            )
        });
        // The health engine block additionally ticks sliding windows
        // and evaluates the default SLO rules over the shared registry
        // at the production 1 s cadence.
        let health = (i == 4).then(|| {
            HealthEngine::spawn(
                registry.clone(),
                Tracer::new(Arc::new(JsonlSink::new(std::io::sink()))),
                HealthConfig::default(),
            )
        });
        let rr = repeat(&env, args.repeats, || {
            let mut opts = env.voyager_options(TestSpec::simple(), Mode::GodivaMulti);
            configure(&mut opts);
            if let Some(engine) = &health {
                opts.health = Some(engine.handle());
            }
            opts
        });
        drop(health);
        drop(snapshotter);
        floor.get_or_insert(rr.total.mean);
        if i == 1 {
            tracing_base = Some(rr.total.mean);
        }
        if i == 4 {
            full_stack = Some(rr.total.mean);
        }
        // percent() is "reduced vs a"; negate to report added cost.
        let vs = match tracing_base {
            _ if i == 0 => "(floor)".to_string(),
            _ if i == 1 => "baseline".to_string(),
            Some(base) => format!("{:+.1}%", -percent(base, rr.total.mean)),
            None => "?".to_string(),
        };
        table.row(&[
            label.to_string(),
            format!("{:.3} ± {:.3}", rr.total.mean, rr.total.ci95),
            format!("{:.3}", rr.visible_io.mean),
            vs,
        ]);
    }
    println!("{}", table.render());
    if let Ok(meta) = std::fs::metadata(&trace_path) {
        println!(
            "trace file: {} ({:.1} KiB per run)",
            trace_path.display(),
            meta.len() as f64 / 1024.0
        );
    }
    let _ = std::fs::remove_file(&trace_path);
    drop(server);
    if let (Some(base), Some(full)) = (tracing_base, full_stack) {
        let overhead = -percent(base, full);
        println!("full monitoring stack vs tracing baseline: {overhead:+.1}% (target < 5%)");
    }
    println!(
        "acceptance: flight recorder, snapshotter and health engine within 5% of the \
         tracing baseline."
    );
}
