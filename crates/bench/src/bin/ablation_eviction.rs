//! Ablation: LRU vs FIFO eviction of finished units (§3.3).
//!
//! The paper's library "uses the LRU algorithm for cache replacement".
//! This experiment replays an interactive browsing trace with a hot
//! snapshot (the user keeps returning to a reference frame — the
//! "switch back and forth" pattern of §1) under a small memory budget
//! and compares hit rates and response times for the two policies.

use godiva_bench::{ExperimentEnv, HarnessArgs, Table};
use godiva_core::EvictionPolicy;
use godiva_platform::Platform;
use godiva_sdf::ReadOptions;
use godiva_viz::{GodivaBackend, GodivaBackendOptions, SnapshotSource};
use std::time::{Duration, Instant};

/// Browsing trace: explore each snapshot, returning to frame 0 after
/// every step.
fn trace(snapshots: usize) -> Vec<usize> {
    let mut t = vec![0];
    for s in 1..snapshots {
        t.push(s);
        t.push(0);
    }
    t
}

fn run(
    env: &ExperimentEnv,
    policy: EvictionPolicy,
    budget: u64,
    visits: &[usize],
) -> (f64, Duration, u64) {
    let mut options = GodivaBackendOptions::interactive(vec!["stress_avg".to_string()], budget);
    options.eviction = policy;
    let mut be = GodivaBackend::new(
        env.platform.storage(),
        env.dataset.config.clone(),
        ReadOptions::new(),
        options,
    );
    let all: Vec<usize> = (0..env.dataset.config.snapshots).collect();
    be.begin_run(&all).expect("begin");
    let started = Instant::now();
    for &s in visits {
        be.load_pass(s, "stress_avg").expect("load");
        be.end_snapshot(s).expect("end");
    }
    let elapsed = started.elapsed();
    let stats = be.gbo_stats().expect("stats");
    (stats.hit_rate().unwrap_or(0.0), elapsed, stats.evictions)
}

fn main() {
    let args = HarnessArgs::parse();
    let genx = args.genx();
    let env = ExperimentEnv::prepare(Platform::engle(args.scale), &genx);
    let visits = trace(args.snapshots);

    // Calibrate one unit's footprint, then allow ~3 units.
    let (_, _, _) = run(&env, EvictionPolicy::Lru, u64::MAX, &[0]);
    let probe = {
        let mut options =
            GodivaBackendOptions::interactive(vec!["stress_avg".to_string()], u64::MAX);
        options.eviction = EvictionPolicy::Lru;
        let mut be = GodivaBackend::new(
            env.platform.storage(),
            env.dataset.config.clone(),
            ReadOptions::new(),
            options,
        );
        be.begin_run(&[0]).unwrap();
        be.load_pass(0, "stress_avg").unwrap();
        be.gbo_stats().unwrap().bytes_allocated
    };
    let budget = probe * 3;
    println!(
        "== Ablation: eviction policy (interactive revisit trace, Engle) ==\n\
         {} visits over {} snapshots, hot frame 0; budget = 3 units (~{:.2} MB)\n",
        visits.len(),
        args.snapshots,
        budget as f64 / (1024.0 * 1024.0)
    );

    let mut table = Table::new(&["policy", "hit rate", "evictions", "wall time (s)"]);
    for (label, policy) in [
        ("LRU (paper)", EvictionPolicy::Lru),
        ("FIFO", EvictionPolicy::Fifo),
    ] {
        let (hit, elapsed, evictions) = run(&env, policy, budget, &visits);
        table.row(&[
            label.to_string(),
            format!("{:.1}%", hit * 100.0),
            evictions.to_string(),
            format!("{:.3}", elapsed.as_secs_f64()),
        ]);
    }
    println!("{}", table.render());
    println!("expectation: LRU keeps the hot frame resident; FIFO keeps evicting it.");
}
