//! §1 background claim: scientific data libraries *"have at
//! visualization time a higher input cost than do plain binary files"*
//! (and §4.1: "we have observed relatively low data transfer rates in
//! accessing files written using scientific data libraries such as
//! HDF").
//!
//! This experiment reads the same arrays through the SDF container
//! (directory walk + checksum + optional shuffle decode) and through
//! plain binary files, on the simulated Engle disk, and reports
//! effective input bandwidth.

use godiva_bench::{HarnessArgs, Table};
use godiva_platform::{CpuPool, Platform, Storage};
use godiva_sdf::plain;
use godiva_sdf::{Encoding, ReadOptions, SdfFile, SdfWriter};
use std::sync::Arc;
use std::time::Instant;

const ARRAYS: usize = 24;
const ELEMS: usize = 16_384; // 128 KiB per array

fn main() {
    let args = HarnessArgs::parse();
    let platform = Platform::engle(args.scale);
    let storage = platform.storage();
    let cpu = CpuPool::new(1, 1.25);

    // One SDF file with all arrays (directory at the tail), plus one
    // plain binary file per array — both idiomatic layouts.
    let data: Vec<Vec<f64>> = (0..ARRAYS)
        .map(|a| (0..ELEMS).map(|i| (a * ELEMS + i) as f64).collect())
        .collect();
    for (encoding, name) in [
        (Encoding::Raw, "raw.sdf"),
        (Encoding::Shuffle, "shuffle.sdf"),
    ] {
        let mut w = SdfWriter::create(storage.as_ref(), name).with_encoding(encoding);
        for (a, values) in data.iter().enumerate() {
            w.put_1d(&format!("array{a}"), values, vec![]).unwrap();
        }
        w.finish().unwrap();
    }
    for (a, values) in data.iter().enumerate() {
        plain::write_array(storage.as_ref(), &format!("plain_{a}.bin"), values).unwrap();
    }

    let total_mb = (ARRAYS * ELEMS * 8) as f64 / (1024.0 * 1024.0);
    println!(
        "== Input cost: SDF (HDF-like) vs plain binary ==\n\
         {ARRAYS} arrays x {ELEMS} f64 = {total_mb:.1} MB, Engle disk, scale {}\n",
        args.scale
    );

    let mut table = Table::new(&["format", "read time (s)", "bandwidth (MB/s, scaled)"]);
    let mut bench = |label: &str, f: &mut dyn FnMut()| {
        let t = Instant::now();
        for _ in 0..args.repeats {
            f();
        }
        let secs = t.elapsed().as_secs_f64() / args.repeats as f64;
        table.row(&[
            label.to_string(),
            format!("{secs:.3}"),
            format!("{:.1}", total_mb / secs.max(1e-9)),
        ]);
    };

    let opts = ReadOptions::new().with_cpu(cpu.clone(), 25);
    let st: Arc<dyn Storage> = storage.clone();
    bench("plain binary", &mut || {
        for a in 0..ARRAYS {
            let v: Vec<f64> = plain::read_array(st.as_ref(), &format!("plain_{a}.bin")).unwrap();
            assert_eq!(v.len(), ELEMS);
        }
    });
    bench("SDF raw (checksummed)", &mut || {
        let f = SdfFile::open_with(st.clone(), "raw.sdf", opts.clone()).unwrap();
        for a in 0..ARRAYS {
            let v: Vec<f64> = f.read(&format!("array{a}")).unwrap();
            assert_eq!(v.len(), ELEMS);
        }
    });
    bench("SDF shuffle (checksummed+decoded)", &mut || {
        let f = SdfFile::open_with(st.clone(), "shuffle.sdf", opts.clone()).unwrap();
        for a in 0..ARRAYS {
            let v: Vec<f64> = f.read(&format!("array{a}")).unwrap();
            assert_eq!(v.len(), ELEMS);
        }
    });
    println!("{}", table.render());
    println!("expectation: plain binary > SDF raw > SDF shuffle in bandwidth.");
}
