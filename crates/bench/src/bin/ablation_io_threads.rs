//! Ablation: I/O executor width (beyond the paper).
//!
//! The paper's TG build has exactly one background I/O thread. The
//! executor generalizes that to N reader workers; this experiment sweeps
//! 1/2/4 workers over the three paper pipelines on a Turing node and
//! reports wall time, visible I/O, and budget discipline. With one
//! worker the behaviour (and the trace event sequence) is the paper's;
//! with more, one unit's decode CPU overlaps another's disk time and
//! concurrent streams overlap on the command-queuing disk.

use godiva_bench::table::mean_ci;
use godiva_bench::{repeat, ExperimentEnv, HarnessArgs, JsonWriter, RepeatedRuns, Table};
use godiva_platform::Platform;
use godiva_viz::{Mode, TestSpec};

const WORKERS: [usize; 3] = [1, 2, 4];

fn main() {
    let args = HarnessArgs::parse();
    let genx = args.genx();
    println!(
        "== Ablation: I/O executor width (Turing node, TG build) ==\n\
         dataset: {} nodes / {} elements / {} blocks, {} snapshots, scale {}\n",
        genx.node_count(),
        genx.elem_count(),
        genx.blocks,
        args.snapshots,
        args.scale
    );
    let env = ExperimentEnv::prepare(Platform::turing(args.scale), &genx);
    let mem_limit: u64 = 384 << 20;

    let mut table = Table::new(&[
        "test",
        "workers",
        "total (s)",
        "visible I/O (s)",
        "computation (s)",
        "peak MB",
        "over-budget",
    ]);
    let mut any_improved = false;
    let mut json = args.json.as_ref().map(|_| {
        let mut w = JsonWriter::new("ablation_io_threads");
        w.int_field("snapshots", args.snapshots as u64);
        w.int_field("repeats", args.repeats as u64);
        w.num_field("scale", args.scale);
        w.begin_array("arms");
        w
    });
    for spec in TestSpec::all() {
        let mut baseline: Option<RepeatedRuns> = None;
        let mut checksums: Option<Vec<u64>> = None;
        for workers in WORKERS {
            let rr = repeat(&env, args.repeats, || {
                let mut opts = env.voyager_options(spec.clone(), Mode::GodivaMulti);
                opts.mem_limit = mem_limit;
                opts.io_threads = workers;
                opts
            });
            let (mut peak, mut over_budget) = (0u64, 0u64);
            for run in &rr.runs {
                let stats = run.report.gbo_stats.as_ref().expect("gbo stats");
                peak = peak.max(stats.mem_peak);
                over_budget += stats.over_budget_allocs;
                assert!(
                    stats.mem_peak <= mem_limit,
                    "budget violated at {workers} workers: peak {} > limit {}",
                    stats.mem_peak,
                    mem_limit
                );
                // Renders must be bit-identical regardless of executor
                // width — prefetch order may differ, pixels may not.
                match &checksums {
                    None => checksums = Some(run.report.image_checksums.clone()),
                    Some(c) => assert_eq!(
                        c, &run.report.image_checksums,
                        "checksums diverged at {workers} workers"
                    ),
                }
            }
            if let Some(base) = &baseline {
                if rr.total.mean < base.total.mean {
                    any_improved = true;
                }
            } else {
                baseline = Some(rr.clone());
            }
            table.row(&[
                spec.name.clone(),
                workers.to_string(),
                mean_ci(rr.total),
                mean_ci(rr.visible_io),
                mean_ci(rr.computation),
                format!("{:.1}", peak as f64 / (1024.0 * 1024.0)),
                over_budget.to_string(),
            ]);
            if let Some(w) = &mut json {
                w.begin_object(None);
                w.str_field("test", &spec.name);
                w.int_field("workers", workers as u64);
                w.num_field("total_s", rr.total.mean);
                w.num_field("ci95_s", rr.total.ci95);
                w.num_field("visible_io_s", rr.visible_io.mean);
                w.num_field("computation_s", rr.computation.mean);
                w.int_field("peak_bytes", peak);
                w.int_field("over_budget", over_budget);
                w.end_object();
            }
        }
    }
    println!("{}", table.render());
    if let (Some(mut w), Some(path)) = (json, &args.json) {
        w.end_array();
        w.write_to(path);
    }
    println!(
        "expectation: extra workers hide more read time on at least one pipeline; \
         images identical, budget respected at every width."
    );
    if !any_improved {
        println!("warning: no pipeline improved over the 1-worker baseline in this run");
    }
}
