//! §4.2 text: *"by using the GODIVA database, the volume of reads can be
//! reduced by approximately 14%, 24%, and 16%, in the 'simple',
//! 'medium', and 'complex' tests respectively."*
//!
//! This experiment measures exactly that: bytes read per snapshot by the
//! original Voyager (O) vs Voyager with GODIVA (G), per test. It runs on
//! an instant platform — only volume matters here, not time.

use godiva_bench::{measure, paper, ExperimentEnv, HarnessArgs, Table};
use godiva_platform::Platform;
use godiva_viz::{Mode, TestSpec};

fn main() {
    let mut args = HarnessArgs::parse();
    args.repeats = 1; // volumes are deterministic
    let genx = args.genx();
    println!(
        "== I/O volume: redundant-read elimination by GODIVA (G vs O) ==\n\
         dataset: {} blocks, {} files/snapshot, {} snapshots\n",
        genx.blocks, genx.files_per_snapshot, args.snapshots
    );
    let env = ExperimentEnv::prepare(Platform::instant(2), &genx);

    let mut table = Table::new(&[
        "test",
        "O MB/snapshot",
        "G MB/snapshot",
        "paper MB/snap (O)",
        "volume reduced (paper -> measured)",
        "read ops reduced",
    ]);
    for spec in TestSpec::all() {
        let p = paper::paper_test(&spec.name).expect("paper reference");
        let mb = |bytes: u64| bytes as f64 / (1024.0 * 1024.0) / args.snapshots as f64;
        let run = |mode: Mode| {
            let mut opts = env.voyager_options(spec.clone(), mode);
            opts.decode_work_per_kib = 0;
            opts.spec.work_per_op = godiva_platform::Work::ZERO;
            measure(&env, opts)
        };
        let o = run(Mode::Original);
        let g = run(Mode::GodivaSingle);
        let vol_red = godiva_bench::percent(o.bytes_read as f64, g.bytes_read as f64);
        let ops_red = godiva_bench::percent(o.reads as f64, g.reads as f64);
        table.row(&[
            spec.name.clone(),
            format!("{:.2}", mb(o.bytes_read)),
            format!("{:.2}", mb(g.bytes_read)),
            format!("{:.1}", p.input_mb_per_snapshot),
            format!("{:.0}% -> {:.1}%", p.io_volume_reduction_pct, vol_red),
            format!("{:.1}%", ops_red),
        ]);
    }
    println!("{}", table.render());
    println!(
        "note: the synthetic dataset is ~1/40 the paper's size; compare the\n\
         *reduction percentages and their ordering* (medium > complex ≈ simple),\n\
         not absolute megabytes."
    );
}
