//! Ablation: Voyager under injected transient storage faults.
//!
//! The paper's library aborts on the first read failure. The
//! robustness extension adds a retry policy with exponential backoff
//! plus a degraded mode that skips unreadable files/snapshots and
//! renders the rest. This experiment injects seeded probabilistic
//! read faults at increasing rates and compares the two fault modes:
//! abort (baseline) vs degrade, both with a 3-attempt retry budget.

use godiva_bench::{ExperimentEnv, HarnessArgs, Table};
use godiva_core::RetryPolicy;
use godiva_platform::{FaultyFs, Platform, Storage};
use godiva_viz::{run_voyager, FaultMode, Granularity, Mode, TestSpec, VoyagerOptions};
use std::sync::Arc;
use std::time::Duration;

struct Outcome {
    completed: bool,
    images: usize,
    blocks_skipped: usize,
    retries: u64,
    wall: Duration,
}

fn run(env: &ExperimentEnv, rate: f64, seed: u64, fault_mode: FaultMode) -> Outcome {
    // Fresh fault wrapper per run so injected-fault decisions are a
    // pure function of (seed, path, attempt) — retries re-roll.
    let faulty = Arc::new(FaultyFs::new(env.platform.storage()));
    if rate > 0.0 {
        faulty.fail_randomly(seed, rate);
    }
    let mut opts = VoyagerOptions::new(
        faulty as Arc<dyn Storage>,
        env.platform.cpu().clone(),
        env.dataset.config.clone(),
        TestSpec::simple(),
        Mode::GodivaMulti,
    );
    // File-granularity units localize a persistent fault to one file's
    // blocks, so degraded runs still produce images.
    opts.granularity = Granularity::File;
    opts.retry = RetryPolicy::new(3, Duration::from_millis(1), Duration::from_millis(8));
    opts.fault_mode = fault_mode;
    let started = std::time::Instant::now();
    match run_voyager(opts) {
        Ok(report) => Outcome {
            completed: true,
            images: report.images,
            blocks_skipped: report.fault_report.blocks_skipped.len(),
            retries: report.fault_report.units_retried,
            wall: started.elapsed(),
        },
        Err(_) => Outcome {
            completed: false,
            images: 0,
            blocks_skipped: 0,
            retries: 0,
            wall: started.elapsed(),
        },
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let genx = args.genx();
    let env = ExperimentEnv::prepare(Platform::engle(args.scale), &genx);

    println!(
        "== Ablation: fault tolerance (seeded random read faults, Engle) ==\n\
         {} snapshots, GODIVA multi-thread, file-granularity units,\n\
         retry budget 3 attempts (1 ms base backoff, 8 ms cap)\n",
        genx.snapshots
    );

    let mut table = Table::new(&[
        "fault rate",
        "mode",
        "outcome",
        "images",
        "blocks skipped",
        "unit retries",
        "wall time (s)",
        "images/s",
    ]);
    for (i, rate) in [0.0, 0.01, 0.05, 0.10].into_iter().enumerate() {
        for fault_mode in [FaultMode::Abort, FaultMode::Degrade] {
            let o = run(&env, rate, 0xFA17 + i as u64, fault_mode);
            let secs = o.wall.as_secs_f64();
            table.row(&[
                format!("{:.0}%", rate * 100.0),
                format!("{fault_mode:?}"),
                if o.completed { "completed" } else { "aborted" }.to_string(),
                o.images.to_string(),
                o.blocks_skipped.to_string(),
                o.retries.to_string(),
                format!("{secs:.3}"),
                if secs > 0.0 {
                    format!("{:.2}", o.images as f64 / secs)
                } else {
                    "-".into()
                },
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "expectation: abort loses the whole run once a fault survives the retry\n\
         budget; degrade keeps rendering, trading a few skipped blocks for\n\
         completed images."
    );
}
