//! Figure 3(b): Voyager running time on a dual-CPU Turing cluster node —
//! O, G, TG1 (a competing compute-bound process occupies the second
//! CPU) and TG2 (second CPU free for the I/O thread).

use godiva_bench::table::mean_ci;
use godiva_bench::{paper, repeat, ExperimentEnv, HarnessArgs, RepeatedRuns, Table};
use godiva_platform::{ExternalLoad, Platform};
use godiva_viz::{Mode, TestSpec};
use std::time::Duration;

fn main() {
    let args = HarnessArgs::parse();
    let genx = args.genx();
    println!(
        "== Figure 3(b): Voyager running time on a Turing node (2 CPUs) ==\n\
         dataset: {} nodes / {} elements / {} blocks, {} snapshots, scale {}\n",
        genx.node_count(),
        genx.elem_count(),
        genx.blocks,
        args.snapshots,
        args.scale
    );
    let env = ExperimentEnv::prepare(Platform::turing(args.scale), &genx);

    // (label, mode, competing external load?)
    let configs: [(&str, Mode, bool); 4] = [
        ("O", Mode::Original, false),
        ("G", Mode::GodivaSingle, false),
        ("TG1", Mode::GodivaMulti, true),
        ("TG2", Mode::GodivaMulti, false),
    ];

    let mut table = Table::new(&[
        "test",
        "version",
        "computation (s)",
        "visible I/O (s)",
        "total (s)",
    ]);
    let mut results: Vec<Vec<RepeatedRuns>> = Vec::new();
    for spec in TestSpec::all() {
        let mut per_cfg = Vec::new();
        for (label, mode, with_load) in configs {
            // The competing process gets its round-robin fair share
            // (3 runnable threads on 2 CPUs → ~2/3 of one core each).
            let load = with_load.then(|| {
                ExternalLoad::start_with_duty(
                    env.platform.cpu().clone(),
                    Duration::from_millis(2),
                    Duration::from_millis(1),
                )
            });
            let rr = repeat(&env, args.repeats, || {
                env.voyager_options(spec.clone(), mode)
            });
            drop(load);
            table.row(&[
                spec.name.clone(),
                label.to_string(),
                mean_ci(rr.computation),
                mean_ci(rr.visible_io),
                mean_ci(rr.total),
            ]);
            per_cfg.push(rr);
        }
        results.push(per_cfg);
    }
    println!("{}", table.render());

    println!(
        "Derived quantities (paper -> measured; paper hidden range on Turing: {:.1}%..{:.1}%):",
        paper::TURING_HIDDEN_RANGE_PCT.0,
        paper::TURING_HIDDEN_RANGE_PCT.1
    );
    let mut derived = Table::new(&[
        "test",
        "G vs O: I/O time reduced",
        "TG1: I/O hidden",
        "TG2: I/O hidden",
        "best TG vs O: input cost reduced",
    ]);
    for (i, spec) in TestSpec::all().iter().enumerate() {
        let p = paper::paper_test(&spec.name).expect("paper reference");
        let [o, g, tg1, tg2] = [
            &results[i][0],
            &results[i][1],
            &results[i][2],
            &results[i][3],
        ];
        let io_reduced = godiva_bench::percent(o.visible_io.mean, g.visible_io.mean);
        let hidden = |tg: &RepeatedRuns| {
            100.0 * (g.total.mean - tg.total.mean) / g.visible_io.mean.max(1e-9)
        };
        let best_total = tg1.total.mean.min(tg2.total.mean);
        let overall = 100.0 * (o.total.mean - best_total) / o.visible_io.mean.max(1e-9);
        derived.row(&[
            spec.name.clone(),
            format!(
                "{:.1}% -> {:.1}%",
                p.turing_g_io_time_reduction_pct, io_reduced
            ),
            format!("{:.1}%", hidden(tg1)),
            format!("{:.1}%", hidden(tg2)),
            format!("{:.1}% -> {:.1}%", p.turing_overall_max_pct, overall),
        ]);
    }
    println!("{}", derived.render());
}
