//! Ablation: GODIVA memory budget (`setMemSpace`, §3.2–3.3).
//!
//! *"To get benefits from the prefetching or caching mechanism, there
//! must be at least enough idle space to hold one more processing unit
//! than those currently being processed"* — the double-buffering
//! analogy. This sweep runs the TG build under budgets from "barely one
//! unit" to "everything fits" and reports how much I/O stays visible.

use godiva_bench::table::mean_ci;
use godiva_bench::{measure, repeat, ExperimentEnv, HarnessArgs, Table};
use godiva_platform::Platform;
use godiva_viz::{Mode, TestSpec};

fn main() {
    let args = HarnessArgs::parse();
    let genx = args.genx();
    let env = ExperimentEnv::prepare(Platform::engle(args.scale), &genx);
    let spec = TestSpec::simple();

    // Calibrate: bytes one loaded snapshot-unit charges, measured from a
    // single-thread run.
    let unit_bytes = {
        let mut opts = env.voyager_options(spec.clone(), Mode::GodivaSingle);
        opts.decode_work_per_kib = 0;
        opts.spec.work_per_op = godiva_platform::Work::ZERO;
        let m = measure(&env, opts);
        let stats = m.report.gbo_stats.expect("godiva stats");
        stats.bytes_allocated / args.snapshots as u64
    };
    println!(
        "== Ablation: memory budget sweep (TG build, 'simple' test, Engle) ==\n\
         one snapshot-unit charges ~{:.2} MB; paper configured 384 MB\n",
        unit_bytes as f64 / (1024.0 * 1024.0)
    );

    let mut table = Table::new(&[
        "budget (units)",
        "budget (MB)",
        "visible I/O (s)",
        "total (s)",
        "evictions",
        "deadlocks",
    ]);
    for factor in [1.25, 2.0, 4.0, 8.0, 1e6] {
        let budget = ((unit_bytes as f64) * factor) as u64;
        let rr = repeat(&env, args.repeats, || {
            let mut opts = env.voyager_options(spec.clone(), Mode::GodivaMulti);
            opts.mem_limit = budget;
            opts
        });
        let stats = rr
            .runs
            .last()
            .and_then(|r| r.report.gbo_stats.clone())
            .unwrap_or_default();
        table.row(&[
            if factor >= 1e6 {
                "unbounded".into()
            } else {
                format!("{factor:.2}x")
            },
            format!("{:.2}", budget as f64 / (1024.0 * 1024.0)),
            mean_ci(rr.visible_io),
            mean_ci(rr.total),
            stats.evictions.to_string(),
            stats.deadlocks_detected.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expectation: visible I/O drops sharply once the budget exceeds ~2 units\n\
         (double buffering) and flattens after that — extra memory only helps\n\
         caching, which batch mode does not exploit."
    );
}
