//! Figure 3(a): Voyager running time on the Engle workstation
//! (single CPU) — computation time + visible I/O time for the
//! simple/medium/complex tests under the O, G and TG builds, plus the
//! derived percentages §4.2 reports in its text.

use godiva_bench::table::mean_ci;
use godiva_bench::{paper, repeat, ExperimentEnv, HarnessArgs, RepeatedRuns, Table, TraceDir};
use godiva_platform::Platform;
use godiva_viz::{Mode, TestSpec};

fn main() {
    let args = HarnessArgs::parse();
    let genx = args.genx();
    println!(
        "== Figure 3(a): Voyager running time on Engle (1 CPU) ==\n\
         dataset: {} nodes / {} elements / {} blocks, {} snapshots, scale {}\n",
        genx.node_count(),
        genx.elem_count(),
        genx.blocks,
        args.snapshots,
        args.scale
    );
    let env = ExperimentEnv::prepare(Platform::engle(args.scale), &genx);
    let traces = TraceDir::new(args.trace_dir.as_deref());

    let modes = [Mode::Original, Mode::GodivaSingle, Mode::GodivaMulti];
    let mut table = Table::new(&[
        "test",
        "version",
        "computation (s)",
        "visible I/O (s)",
        "total (s)",
    ]);
    // results[test_index][mode_index]
    let mut results: Vec<Vec<RepeatedRuns>> = Vec::new();
    for spec in TestSpec::all() {
        let mut per_mode = Vec::new();
        for mode in modes {
            let rr = repeat(&env, args.repeats, || {
                let mut opts = env.voyager_options(spec.clone(), mode);
                opts.tracer = traces.next_tracer();
                opts
            });
            table.row(&[
                spec.name.clone(),
                mode.label().to_string(),
                mean_ci(rr.computation),
                mean_ci(rr.visible_io),
                mean_ci(rr.total),
            ]);
            per_mode.push(rr);
        }
        results.push(per_mode);
    }
    println!("{}", table.render());

    println!("Derived quantities (paper value -> measured):");
    let mut derived = Table::new(&[
        "test",
        "G vs O: I/O time reduced",
        "TG vs G: I/O hidden",
        "TG vs O: input cost reduced",
    ]);
    for (i, spec) in TestSpec::all().iter().enumerate() {
        let p = paper::paper_test(&spec.name).expect("paper reference");
        let [o, g, tg] = [&results[i][0], &results[i][1], &results[i][2]];
        let io_reduced = godiva_bench::percent(o.visible_io.mean, g.visible_io.mean);
        // §4.2: hidden = (total_G − total_TG) / total_io_G.
        let hidden = 100.0 * (g.total.mean - tg.total.mean) / g.visible_io.mean.max(1e-9);
        let overall = 100.0 * (o.total.mean - tg.total.mean) / o.visible_io.mean.max(1e-9);
        derived.row(&[
            spec.name.clone(),
            format!(
                "{:.1}% -> {:.1}%",
                p.engle_g_io_time_reduction_pct, io_reduced
            ),
            format!("{:.1}% -> {:.1}%", p.engle_hidden_pct, hidden),
            format!("{:.1}% -> {:.1}%", p.engle_overall_pct, overall),
        ]);
    }
    println!("{}", derived.render());
}
