//! Ablation: durability and recovery (DESIGN.md §5g, beyond the paper).
//!
//! Two questions about the write-ahead log:
//!
//! 1. **What does journaling cost when nothing crashes?** The same
//!    two-sweep browsing trace as `ablation_spill` (G build, ~2.5-unit
//!    memory budget, ample spill tier) runs with the WAL off and with
//!    the WAL on (`Durability::Wal`, append without fsync); the target
//!    is < 5 % wall-time overhead.
//! 2. **What does recovery buy after a restart?** A single sweep runs
//!    to completion, the backend is dropped (the "crash"), and a second
//!    sweep runs in a fresh backend. A **cold** restart starts from an
//!    empty database and re-reads every snapshot from the dataset; a
//!    **warm** restart (`resume` over the first run's WAL and surviving
//!    spill frames) replays the journal, re-adopts the frames, and
//!    serves those revisits from the spill tier instead.
//!
//! The spill cache lives on its own simulated disk (writes free, reads
//! pay seek + stream) so the dataset storage's counters measure
//! developer-callback traffic only; the WAL itself lives on the real
//! filesystem, as it does in production. Images are checksummed in
//! every arm and must match the reference run exactly.

use godiva_bench::table::mean_ci;
use godiva_bench::{measure, percent, repeat, ExperimentEnv, HarnessArgs, Table};
use godiva_core::{Durability, SpillConfig};
use godiva_platform::{DiskModel, Platform, SimFs, Storage};
use godiva_viz::{Mode, TestSpec, VoyagerOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A fresh real-filesystem WAL directory (the journal bypasses the
/// simulated storage — it must survive a real process death).
fn fresh_wal_dir() -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "godiva-ablation-recovery-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn spill_storage(scale: f64) -> Arc<dyn Storage> {
    Arc::new(SimFs::new(DiskModel::cluster_scsi().scaled(scale)).with_free_writes())
}

fn main() {
    let args = HarnessArgs::parse();
    let genx = args.genx();
    let env = ExperimentEnv::prepare(Platform::turing(args.scale), &genx);
    let spec = TestSpec::simple();
    let one_sweep: Vec<usize> = (0..args.snapshots).collect();
    let two_sweeps: Vec<usize> = (0..args.snapshots).chain(0..args.snapshots).collect();
    println!(
        "== Ablation: durability and recovery (Turing node, G build, browsing trace) ==\n\
         {} snapshots, {} repeats, scale {}\n",
        args.snapshots, args.repeats, args.scale
    );

    let base_opts = |visits: &[usize]| -> VoyagerOptions {
        let mut opts = env.voyager_options(spec.clone(), Mode::GodivaSingle);
        opts.snapshots = visits.to_vec();
        opts.delete_after_use = Some(false);
        opts
    };

    // Calibrate: unbounded memory, one cold load per snapshot, and the
    // reference images every other arm must reproduce.
    let (reference_checksums, unit_bytes) = {
        let mut opts = base_opts(&two_sweeps);
        opts.mem_limit = 1 << 40;
        let m = measure(&env, opts);
        let stats = m.report.gbo_stats.as_ref().expect("godiva stats");
        (
            m.report.image_checksums.clone(),
            stats.bytes_allocated / args.snapshots as u64,
        )
    };
    let mem_limit = unit_bytes * 5 / 2; // ~2.5 units: forces eviction + spill
    let spill_budget = unit_bytes * 64; // ample: no spill thrash

    // ---- arm 1+2: WAL overhead on the no-crash path --------------------
    let mut wal_dirs: Vec<PathBuf> = Vec::new();
    let mut arm = |durability: Option<Durability>| {
        repeat(&env, args.repeats, || {
            let mut opts = base_opts(&two_sweeps);
            opts.mem_limit = mem_limit;
            opts.spill = Some(SpillConfig {
                storage: spill_storage(args.scale),
                dir: "spill".into(),
                budget: spill_budget,
            });
            if let Some(d) = durability {
                let dir = fresh_wal_dir();
                wal_dirs.push(dir.clone());
                opts.wal_dir = Some(dir);
                opts.durability = d;
            }
            opts
        })
    };
    let off = arm(None);
    let on = arm(Some(Durability::Wal));
    for run in off.runs.iter().chain(&on.runs) {
        assert_eq!(
            reference_checksums, run.report.image_checksums,
            "images diverged in a no-crash arm"
        );
    }
    let overhead_pct = -percent(off.total.mean, on.total.mean);
    let wal_appends: u64 = on
        .runs
        .iter()
        .map(|r| r.report.gbo_stats.as_ref().expect("stats").wal_appends)
        .sum::<u64>()
        / on.runs.len() as u64;

    // ---- arm 3: cold restart -------------------------------------------
    // Sweep 1 runs and the backend is dropped; sweep 2 starts empty and
    // re-reads every snapshot from the dataset.
    let mut cold_reread = 0u64;
    let cold = repeat(&env, args.repeats, || {
        let mut opts = base_opts(&one_sweep);
        opts.mem_limit = mem_limit;
        opts.spill = Some(SpillConfig {
            storage: spill_storage(args.scale),
            dir: "spill".into(),
            budget: spill_budget,
        });
        let first = measure(&env, opts); // the run before the "crash"
        assert_eq!(
            &reference_checksums[..args.snapshots],
            &first.report.image_checksums[..]
        );
        let mut opts = base_opts(&one_sweep);
        opts.mem_limit = mem_limit;
        opts.spill = Some(SpillConfig {
            storage: spill_storage(args.scale),
            dir: "spill".into(),
            budget: spill_budget,
        });
        opts // measured by `repeat`: the restarted sweep itself
    });
    for run in &cold.runs {
        assert_eq!(
            &reference_checksums[..args.snapshots],
            &run.report.image_checksums[..]
        );
        cold_reread += run.bytes_read;
    }
    cold_reread /= cold.runs.len() as u64;

    // ---- arm 4: warm restart -------------------------------------------
    // Same shape, but sweep 1 journals into a WAL and sweep 2 resumes
    // over it: the journal replays and the surviving spill frames are
    // re-adopted, so revisits hit the spill tier, not the dataset.
    let (mut warm_reread, mut replayed, mut spill_hits) = (0u64, 0u64, 0u64);
    let warm = repeat(&env, args.repeats, || {
        let cache = spill_storage(args.scale); // shared across the restart
        let wal_dir = fresh_wal_dir();
        wal_dirs.push(wal_dir.clone());
        let mut opts = base_opts(&one_sweep);
        opts.mem_limit = mem_limit;
        opts.spill = Some(SpillConfig {
            storage: cache.clone(),
            dir: "spill".into(),
            budget: spill_budget,
        });
        opts.wal_dir = Some(wal_dir.clone());
        let first = measure(&env, opts);
        assert_eq!(
            &reference_checksums[..args.snapshots],
            &first.report.image_checksums[..]
        );
        let mut opts = base_opts(&one_sweep);
        opts.mem_limit = mem_limit;
        opts.spill = Some(SpillConfig {
            storage: cache,
            dir: "spill".into(),
            budget: spill_budget,
        });
        opts.wal_dir = Some(wal_dir);
        opts.resume = true;
        opts
    });
    for run in &warm.runs {
        assert_eq!(
            &reference_checksums[..args.snapshots],
            &run.report.image_checksums[..]
        );
        let stats = run.report.gbo_stats.as_ref().expect("godiva stats");
        assert!(stats.wal_replayed > 0, "warm restart replayed nothing");
        assert_eq!(stats.spill_corrupt, 0, "unexpected spill corruption");
        warm_reread += run.bytes_read;
        replayed += stats.wal_replayed;
        spill_hits += stats.spill_hits;
    }
    let runs = warm.runs.len() as u64;
    warm_reread /= runs;
    replayed /= runs;
    spill_hits /= runs;

    let mut table = Table::new(&["arm", "total (s)", "visible I/O (s)", "dataset re-read MB"]);
    let mb = |b: u64| format!("{:.2}", b as f64 / (1024.0 * 1024.0));
    table.row(&[
        "two sweeps, wal off".into(),
        mean_ci(off.total),
        mean_ci(off.visible_io),
        "—".into(),
    ]);
    table.row(&[
        "two sweeps, wal on".into(),
        mean_ci(on.total),
        mean_ci(on.visible_io),
        "—".into(),
    ]);
    table.row(&[
        "cold restart sweep".into(),
        mean_ci(cold.total),
        mean_ci(cold.visible_io),
        mb(cold_reread),
    ]);
    table.row(&[
        "warm restart sweep".into(),
        mean_ci(warm.total),
        mean_ci(warm.visible_io),
        mb(warm_reread),
    ]);
    println!("{}", table.render());
    println!(
        "wal overhead on the no-crash path: {overhead_pct:+.2} % \
         ({wal_appends} appends/run; target < 5 %)\n\
         warm restart: {replayed} records replayed, {spill_hits} spill hits/run; \
         restart time reduced {:.1} %, dataset re-reads reduced {:.1} %",
        percent(cold.total.mean, warm.total.mean),
        percent(cold_reread as f64, warm_reread as f64),
    );

    if let Some(path) = &args.json {
        let json = format!(
            "{{\n  \"experiment\": \"ablation_recovery\",\n  \"snapshots\": {},\n  \
             \"repeats\": {},\n  \"scale\": {},\n  \
             \"wal_off\": {{\"total_s\": {:.6}, \"ci95_s\": {:.6}}},\n  \
             \"wal_on\": {{\"total_s\": {:.6}, \"ci95_s\": {:.6}, \"appends\": {}}},\n  \
             \"wal_overhead_pct\": {:.3},\n  \
             \"cold_restart\": {{\"total_s\": {:.6}, \"ci95_s\": {:.6}, \"reread_bytes\": {}}},\n  \
             \"warm_restart\": {{\"total_s\": {:.6}, \"ci95_s\": {:.6}, \"reread_bytes\": {}, \
             \"wal_replayed\": {}, \"spill_hits\": {}}},\n  \
             \"restart_time_reduced_pct\": {:.3},\n  \
             \"restart_reread_reduced_pct\": {:.3}\n}}\n",
            args.snapshots,
            args.repeats,
            args.scale,
            off.total.mean,
            off.total.ci95,
            on.total.mean,
            on.total.ci95,
            wal_appends,
            overhead_pct,
            cold.total.mean,
            cold.total.ci95,
            cold_reread,
            warm.total.mean,
            warm.total.ci95,
            warm_reread,
            replayed,
            spill_hits,
            percent(cold.total.mean, warm.total.mean),
            percent(cold_reread as f64, warm_reread as f64),
        );
        std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("json summary written to {path}");
    }

    for dir in wal_dirs {
        let _ = std::fs::remove_dir_all(dir);
    }

    assert!(
        warm_reread < cold_reread,
        "warm restart must re-read less of the dataset than a cold one"
    );
    assert!(
        overhead_pct < 5.0,
        "WAL overhead {overhead_pct:.2} % exceeds the 5 % no-crash budget"
    );
}
