//! Ablation: interactive-mode caching (§1, §3.2).
//!
//! *"users may frequently switch back and forth between snapshot images
//! from two different time-steps to observe the changes. Efficient
//! caching can help reduce response time in this case."* And: an
//! interactive tool "perhaps will not delete units voluntarily, hoping
//! that the user revisits some data" — it marks them *finished* instead.
//!
//! This experiment replays a back-and-forth browsing session and
//! compares per-request response times with caching (finish_unit) vs
//! without (delete_unit after every view).

use godiva_bench::{ExperimentEnv, HarnessArgs, Table};
use godiva_platform::{MeanCi, Platform};
use godiva_sdf::ReadOptions;
use godiva_viz::{GodivaBackend, GodivaBackendOptions, SnapshotSource};
use std::time::{Duration, Instant};

/// A back-and-forth exploration: 0,1,0,1,2,1,2,3,2,3,…
fn trace(snapshots: usize) -> Vec<usize> {
    let mut t = vec![0];
    for s in 1..snapshots {
        t.push(s);
        t.push(s - 1);
        t.push(s);
    }
    t
}

fn session(env: &ExperimentEnv, caching: bool, visits: &[usize]) -> (Vec<Duration>, f64) {
    let options = if caching {
        GodivaBackendOptions::interactive(vec!["stress_avg".to_string()], 1 << 30)
    } else {
        GodivaBackendOptions::batch(vec!["stress_avg".to_string()], false, 1 << 30)
    };
    let mut be = GodivaBackend::new(
        env.platform.storage(),
        env.dataset.config.clone(),
        ReadOptions::new(),
        options,
    );
    // Interactive tools cannot add units ahead of time (§3.2); units are
    // read on demand via blocking reads.
    let all: Vec<usize> = (0..env.dataset.config.snapshots).collect();
    be.begin_run(&all).expect("begin");
    let mut times = Vec::with_capacity(visits.len());
    for &s in visits {
        let t = Instant::now();
        be.load_pass(s, "stress_avg").expect("load");
        times.push(t.elapsed());
        be.end_snapshot(s).expect("end");
    }
    let hit = be.gbo_stats().expect("stats").hit_rate();
    (times, hit.unwrap_or(0.0))
}

fn main() {
    let args = HarnessArgs::parse();
    let genx = args.genx();
    let env = ExperimentEnv::prepare(Platform::engle(args.scale), &genx);
    let visits = trace(args.snapshots.min(12));
    println!(
        "== Ablation: interactive caching (back-and-forth trace, Engle) ==\n\
         {} requests over {} snapshots, scale {}\n",
        visits.len(),
        args.snapshots.min(12),
        args.scale
    );

    let mut table = Table::new(&[
        "configuration",
        "mean response (ms)",
        "p95-ish max (ms)",
        "hit rate",
    ]);
    for (label, caching) in [
        ("GODIVA caching (finishUnit)", true),
        ("no caching (deleteUnit)", false),
    ] {
        let (times, hit) = session(&env, caching, &visits);
        let stats = MeanCi::of(&times);
        let max = times.iter().max().copied().unwrap_or_default();
        table.row(&[
            label.to_string(),
            format!("{:.2}", stats.mean * 1000.0),
            format!("{:.2}", max.as_secs_f64() * 1000.0),
            format!("{:.1}%", hit * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("expectation: caching turns every revisit into a sub-millisecond hit.");
}
