//! Ablation: cost of the observability subsystem.
//!
//! The event-trace API is designed to be zero-cost when disabled — the
//! `Tracer` collapses to a `None` and every call site guards argument
//! construction behind `enabled()` — and cheap enough when enabled that
//! traced runs stay representative (< 5 % target). This experiment
//! measures both claims on fig3a-style TG runs (Engle, `simple` test):
//!
//! - **disabled** — no tracer at all (the baseline every other
//!   experiment runs with),
//! - **no-op sink** — a `NullSink` passed to `Tracer::new`; collapses
//!   to the disabled representation, so this row demonstrates the
//!   sink-side kill switch costs nothing,
//! - **JSONL (discard)** — full serialization of every event into
//!   `io::sink()`: the pure tracing + encoding cost,
//! - **JSONL (file)** — the real deal, written to a temp file.

use godiva_bench::{percent, repeat, ExperimentEnv, HarnessArgs, JsonWriter, Table};
use godiva_obs::{JsonlSink, NullSink, Tracer};
use godiva_platform::Platform;
use godiva_viz::{Mode, TestSpec};
use std::sync::Arc;

type TracerFactory = Box<dyn Fn() -> Tracer>;

fn main() {
    let args = HarnessArgs::parse();
    let genx = args.genx();
    let env = ExperimentEnv::prepare(Platform::engle(args.scale), &genx);
    println!(
        "== Ablation: event-tracing overhead (TG, simple test, Engle) ==\n\
         {} snapshots, {} repeats, scale {}\n",
        args.snapshots, args.repeats, args.scale
    );

    let trace_path = std::env::temp_dir().join(format!(
        "godiva-trace-overhead-{}.jsonl",
        std::process::id()
    ));
    let make_tracer: Vec<(&str, TracerFactory)> = vec![
        ("tracing disabled", Box::new(Tracer::disabled)),
        ("no-op sink", Box::new(|| Tracer::new(Arc::new(NullSink)))),
        (
            "JSONL (discard)",
            Box::new(|| Tracer::new(Arc::new(JsonlSink::new(std::io::sink())))),
        ),
        (
            "JSONL (file)",
            Box::new({
                let path = trace_path.clone();
                move || {
                    Tracer::new(Arc::new(
                        JsonlSink::create(&path).expect("create trace file"),
                    ))
                }
            }),
        ),
    ];

    let mut table = Table::new(&["configuration", "total (s)", "visible I/O (s)", "overhead"]);
    let mut baseline: Option<f64> = None;
    let mut json = args.json.as_ref().map(|_| {
        let mut w = JsonWriter::new("ablation_trace_overhead");
        w.int_field("snapshots", args.snapshots as u64);
        w.int_field("repeats", args.repeats as u64);
        w.num_field("scale", args.scale);
        w.begin_array("arms");
        w
    });
    for (label, tracer) in &make_tracer {
        let rr = repeat(&env, args.repeats, || {
            let mut opts = env.voyager_options(TestSpec::simple(), Mode::GodivaMulti);
            opts.tracer = tracer();
            opts
        });
        let base = *baseline.get_or_insert(rr.total.mean);
        // percent() is "reduced vs a"; negate to report added cost.
        let overhead = -percent(base, rr.total.mean);
        table.row(&[
            label.to_string(),
            format!("{:.3} ± {:.3}", rr.total.mean, rr.total.ci95),
            format!("{:.3}", rr.visible_io.mean),
            format!("{overhead:+.1}%"),
        ]);
        if let Some(w) = &mut json {
            w.begin_object(None);
            w.str_field("config", label);
            w.num_field("total_s", rr.total.mean);
            w.num_field("ci95_s", rr.total.ci95);
            w.num_field("visible_io_s", rr.visible_io.mean);
            w.num_field("overhead_pct", overhead);
            w.end_object();
        }
    }
    println!("{}", table.render());
    if let (Some(mut w), Some(path)) = (json, &args.json) {
        w.end_array();
        w.write_to(path);
    }
    if let Ok(meta) = std::fs::metadata(&trace_path) {
        println!(
            "trace file: {} ({:.1} KiB per run)",
            trace_path.display(),
            meta.len() as f64 / 1024.0
        );
    }
    let _ = std::fs::remove_file(&trace_path);
    println!("acceptance: traced runs within 5% of baseline; no-op sink within noise.");
}
