//! §4.2 text: *"we expect the speedup brought by GODIVA in parallel mode
//! to be similar to that obtained in our sequential mode tests … This is
//! confirmed by the results from a series of parallel experiments on
//! Turing using four Voyager processes."*
//!
//! Voyager partitions work by assigning different snapshots to different
//! processes, with essentially no communication; each process uses one
//! CPU per node and GODIVA's I/O thread can use the other. We reproduce
//! that as four simulated Turing nodes, each running a Voyager process
//! over a quarter of the snapshots.

use godiva_bench::{measure, ExperimentEnv, HarnessArgs, Table};
use godiva_platform::Platform;
use godiva_viz::{Mode, TestSpec};
use std::time::Duration;

const PROCESSES: usize = 4;

/// Run `mode` on `procs` nodes in parallel; returns the slowest node's
/// wall time (the parallel job's completion time) and summed visible I/O.
fn parallel_run(
    args: &HarnessArgs,
    spec: &TestSpec,
    mode: Mode,
    procs: usize,
) -> (Duration, Duration) {
    let genx = args.genx();
    let handles: Vec<_> = (0..procs)
        .map(|p| {
            let genx = genx.clone();
            let spec = spec.clone();
            let args = args.clone();
            std::thread::spawn(move || {
                // Each process runs on its own node with a local staging
                // copy of the dataset (Voyager's processes share almost
                // nothing at runtime).
                let env = ExperimentEnv::prepare(Platform::turing(args.scale), &genx);
                let mut opts = env.voyager_options(spec, mode);
                opts.snapshots = (0..args.snapshots).filter(|s| s % procs == p).collect();
                let m = measure(&env, opts);
                (m.report.total, m.report.visible_io)
            })
        })
        .collect();
    let mut worst = Duration::ZERO;
    let mut io = Duration::ZERO;
    for h in handles {
        let (total, vio) = h.join().expect("process thread");
        worst = worst.max(total);
        io += vio;
    }
    (worst, io)
}

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "== Parallel Voyager: {} processes on simulated Turing nodes ==\n\
         ({} snapshots round-robin partitioned, scale {})\n",
        PROCESSES, args.snapshots, args.scale
    );

    let mut table = Table::new(&[
        "test",
        "config",
        "seq total (s)",
        "par total (s)",
        "par speedup",
        "GODIVA benefit seq",
        "GODIVA benefit par",
    ]);
    for spec in TestSpec::all() {
        let (seq_o, _) = parallel_run(&args, &spec, Mode::Original, 1);
        let (seq_tg, _) = parallel_run(&args, &spec, Mode::GodivaMulti, 1);
        let (par_o, _) = parallel_run(&args, &spec, Mode::Original, PROCESSES);
        let (par_tg, _) = parallel_run(&args, &spec, Mode::GodivaMulti, PROCESSES);
        let benefit_seq = godiva_bench::percent(seq_o.as_secs_f64(), seq_tg.as_secs_f64());
        let benefit_par = godiva_bench::percent(par_o.as_secs_f64(), par_tg.as_secs_f64());
        table.row(&[
            spec.name.clone(),
            "O".into(),
            format!("{:.3}", seq_o.as_secs_f64()),
            format!("{:.3}", par_o.as_secs_f64()),
            format!(
                "{:.2}x",
                seq_o.as_secs_f64() / par_o.as_secs_f64().max(1e-9)
            ),
            String::new(),
            String::new(),
        ]);
        table.row(&[
            spec.name.clone(),
            "TG".into(),
            format!("{:.3}", seq_tg.as_secs_f64()),
            format!("{:.3}", par_tg.as_secs_f64()),
            format!(
                "{:.2}x",
                seq_tg.as_secs_f64() / par_tg.as_secs_f64().max(1e-9)
            ),
            format!("{benefit_seq:.1}%"),
            format!("{benefit_par:.1}%"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper's expectation: GODIVA's relative benefit in parallel mode is similar\n\
         to the sequential benefit (compare the last two columns per test)."
    );
}
