//! Minimal JSON summary builder for the experiment binaries' `--json`
//! flag.
//!
//! The bench crate deliberately has no JSON dependency; summaries are
//! small, written once, and read back only by `godiva-report diff`
//! (against the checked-in baselines under `results/`), so an
//! append-only builder with explicit begin/end calls is enough. The
//! builder panics on malformed nesting — a bench binary with a broken
//! summary should fail loudly, not write garbage for CI to diff.

/// Append-only writer producing one pretty-ish JSON document.
///
/// ```
/// use godiva_bench::jsonout::JsonWriter;
/// let mut w = JsonWriter::new("my_experiment");
/// w.int_field("snapshots", 8);
/// w.begin_array("arms");
/// w.begin_object(None);
/// w.str_field("test", "simple");
/// w.num_field("total_s", 1.25);
/// w.end_object();
/// w.end_array();
/// let text = w.finish();
/// assert!(text.starts_with("{\"experiment\":\"my_experiment\""));
/// ```
pub struct JsonWriter {
    out: String,
    /// One entry per open scope: `true` once the scope has a member
    /// (so the next member needs a comma). Index 0 is the root object.
    need_comma: Vec<bool>,
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

impl JsonWriter {
    /// Start the document: a root object whose first member is
    /// `"experiment": NAME` — the diff gate keys off it.
    pub fn new(experiment: &str) -> Self {
        let mut w = JsonWriter {
            out: String::with_capacity(512),
            need_comma: vec![false],
        };
        w.out.push('{');
        w.str_field("experiment", experiment);
        w
    }

    fn sep(&mut self) {
        let top = self.need_comma.last_mut().expect("scope open");
        if *top {
            self.out.push(',');
        }
        *top = true;
    }

    fn key(&mut self, key: &str) {
        self.sep();
        self.out.push('"');
        escape_into(&mut self.out, key);
        self.out.push_str("\":");
    }

    /// `"key": "value"` with JSON string escaping.
    pub fn str_field(&mut self, key: &str, value: &str) {
        self.key(key);
        self.out.push('"');
        escape_into(&mut self.out, value);
        self.out.push('"');
    }

    /// `"key": 1.234567` — six decimals, enough for second-scale
    /// timings at microsecond resolution.
    pub fn num_field(&mut self, key: &str, value: f64) {
        self.key(key);
        if value.is_finite() {
            self.out.push_str(&format!("{value:.6}"));
        } else {
            // JSON has no NaN/Inf; null keeps the document parseable
            // and the diff gate reports the label mismatch.
            self.out.push_str("null");
        }
    }

    /// `"key": 42`.
    pub fn int_field(&mut self, key: &str, value: u64) {
        self.key(key);
        self.out.push_str(&value.to_string());
    }

    /// Open `"key": [`.
    pub fn begin_array(&mut self, key: &str) {
        self.key(key);
        self.out.push('[');
        self.need_comma.push(false);
    }

    /// Close the innermost array.
    pub fn end_array(&mut self) {
        assert!(self.need_comma.len() > 1, "no open array");
        self.need_comma.pop();
        self.out.push(']');
    }

    /// Open a nested object: `"key": {` as a member, or a bare `{`
    /// (pass `None`) as an array element.
    pub fn begin_object(&mut self, key: Option<&str>) {
        match key {
            Some(k) => self.key(k),
            None => self.sep(),
        }
        self.out.push('{');
        self.need_comma.push(false);
    }

    /// Close the innermost nested object.
    pub fn end_object(&mut self) {
        assert!(self.need_comma.len() > 1, "no open object");
        self.need_comma.pop();
        self.out.push('}');
    }

    /// Close the root object and return the document (newline-terminated).
    pub fn finish(mut self) -> String {
        assert_eq!(self.need_comma.len(), 1, "unclosed scope at finish");
        self.out.push_str("}\n");
        self.out
    }

    /// Write the finished document to `path`, exiting with a message on
    /// I/O failure (bench binaries have no error channel but the exit
    /// code).
    pub fn write_to(self, path: &str) {
        let text = self.finish();
        std::fs::write(path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("json summary written to {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_document() {
        let mut w = JsonWriter::new("exp");
        w.int_field("snapshots", 8);
        w.num_field("scale", 0.01);
        w.begin_array("arms");
        for (name, t) in [("a", 1.5), ("b", 2.25)] {
            w.begin_object(None);
            w.str_field("test", name);
            w.num_field("total_s", t);
            w.end_object();
        }
        w.end_array();
        let text = w.finish();
        assert_eq!(
            text,
            "{\"experiment\":\"exp\",\"snapshots\":8,\"scale\":0.010000,\
             \"arms\":[{\"test\":\"a\",\"total_s\":1.500000},\
             {\"test\":\"b\",\"total_s\":2.250000}]}\n"
        );
    }

    #[test]
    fn escapes_strings_and_maps_non_finite_to_null() {
        let mut w = JsonWriter::new("e\"x");
        w.str_field("label", "a\\b\nc");
        w.num_field("bad", f64::NAN);
        let text = w.finish();
        assert!(text.contains("\"experiment\":\"e\\\"x\""));
        assert!(text.contains("\"label\":\"a\\\\b\\nc\""));
        assert!(text.contains("\"bad\":null"));
    }

    #[test]
    fn output_parses_back() {
        let mut w = JsonWriter::new("roundtrip");
        w.begin_object(Some("nested"));
        w.int_field("n", 3);
        w.end_object();
        w.begin_array("empty");
        w.end_array();
        let text = w.finish();
        let v = godiva_obs::parse_json(&text).expect("parses");
        assert_eq!(
            v.get("experiment").and_then(|e| e.as_str()),
            Some("roundtrip")
        );
        assert_eq!(v.get("nested").and_then(|n| n.get("n")?.as_u64()), Some(3));
    }
}
