//! Fixed-width table printing for experiment output.

/// A simple left-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Convenience: append a row of `&str`.
    pub fn row_str(&mut self, cells: &[&str]) {
        self.row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    }

    /// Render with column widths fitted to content.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(c, s)| format!("{s:<width$}", width = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format seconds with millisecond precision.
pub fn secs(s: f64) -> String {
    format!("{s:.3}")
}

/// Format a mean ± CI pair.
pub fn mean_ci(m: godiva_platform::timer::MeanCi) -> String {
    format!("{:.3} ±{:.3}", m.mean, m.ci95)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row_str(&["a", "1"]);
        t.row_str(&["longer-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name  22"));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row_str(&["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(1.23456), "1.235");
        let m = godiva_platform::timer::MeanCi {
            mean: 2.0,
            ci95: 0.5,
        };
        assert_eq!(mean_ci(m), "2.000 ±0.500");
    }
}
