//! Shared experiment machinery: platform + dataset setup, instrumented
//! Voyager runs, repetition with confidence intervals.

use godiva_genx::{GenxConfig, GenxDataset};
use godiva_obs::{JsonlSink, Tracer};
use godiva_platform::{MeanCi, Platform, StorageStats};
use godiva_viz::{run_voyager, Mode, TestSpec, VoyagerOptions, VoyagerReport};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A platform with the GENx dataset pre-generated on its storage.
pub struct ExperimentEnv {
    /// The simulated machine.
    pub platform: Platform,
    /// The generated dataset inventory.
    pub dataset: GenxDataset,
}

impl ExperimentEnv {
    /// Generate `genx` onto `platform`'s storage (writes are free there —
    /// the paper's snapshots pre-exist; only input is measured).
    pub fn prepare(platform: Platform, genx: &GenxConfig) -> ExperimentEnv {
        let dataset =
            godiva_genx::generate(platform.storage().as_ref(), genx).expect("dataset generation");
        ExperimentEnv { platform, dataset }
    }

    /// Default Voyager options for this environment.
    pub fn voyager_options(&self, spec: TestSpec, mode: Mode) -> VoyagerOptions {
        VoyagerOptions::new(
            self.platform.storage(),
            self.platform.cpu().clone(),
            self.dataset.config.clone(),
            spec,
            mode,
        )
    }
}

/// Per-run event tracing for experiment binaries.
///
/// Built from [`crate::HarnessArgs::trace_dir`]: when a directory is
/// given, each call to [`TraceDir::next_tracer`] opens a fresh
/// `run_NNNN.jsonl` file in it; when absent, every tracer is disabled
/// and the runs pay no tracing cost.
pub struct TraceDir {
    dir: Option<std::path::PathBuf>,
    next_run: AtomicU64,
}

impl TraceDir {
    /// Tracing into `dir` (created if missing); `None` disables tracing.
    pub fn new(dir: Option<&str>) -> TraceDir {
        let dir = dir.map(|d| {
            let p = std::path::PathBuf::from(d);
            std::fs::create_dir_all(&p)
                .unwrap_or_else(|e| panic!("cannot create trace dir {}: {e}", p.display()));
            p
        });
        TraceDir {
            dir,
            next_run: AtomicU64::new(0),
        }
    }

    /// Tracer for the next run (disabled when no directory was given).
    pub fn next_tracer(&self) -> Tracer {
        let Some(dir) = &self.dir else {
            return Tracer::disabled();
        };
        let n = self.next_run.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("run_{n:04}.jsonl"));
        match JsonlSink::create(&path) {
            Ok(sink) => Tracer::new(Arc::new(sink)),
            Err(e) => {
                eprintln!("trace: cannot create {}: {e}", path.display());
                Tracer::disabled()
            }
        }
    }

    /// Number of trace files opened so far.
    pub fn runs_traced(&self) -> u64 {
        self.next_run.load(Ordering::Relaxed)
    }
}

/// One measured Voyager run: the report plus storage-level I/O deltas.
#[derive(Debug, Clone)]
pub struct RunMeasurement {
    /// The Voyager report (times, images, GODIVA stats).
    pub report: VoyagerReport,
    /// Bytes read from storage during the run.
    pub bytes_read: u64,
    /// Read operations issued.
    pub reads: u64,
    /// Seeks charged by the simulated disk.
    pub seeks: u64,
}

/// Run Voyager once with storage statistics reset around it.
pub fn measure(env: &ExperimentEnv, opts: VoyagerOptions) -> RunMeasurement {
    let storage = env.platform.storage();
    storage.reset_stats();
    // Mirror the run's tracer onto the simulated disk so device spans
    // land in the same trace file as the GBO and render events.
    env.platform.set_tracer(opts.tracer.clone());
    let report = run_voyager(opts).expect("voyager run");
    env.platform.set_tracer(Tracer::disabled());
    let stats: StorageStats = storage.stats();
    RunMeasurement {
        report,
        bytes_read: stats.bytes_read,
        reads: stats.reads,
        seeks: stats.seeks,
    }
}

/// Repeated runs of one configuration with summary statistics.
#[derive(Debug, Clone)]
pub struct RepeatedRuns {
    /// Individual measurements.
    pub runs: Vec<RunMeasurement>,
    /// Mean ± 95 % CI of total time (seconds).
    pub total: MeanCi,
    /// Mean ± 95 % CI of visible I/O time.
    pub visible_io: MeanCi,
    /// Mean ± 95 % CI of computation time.
    pub computation: MeanCi,
}

/// Run one configuration `repeats` times (`make_opts` is called per run
/// so each run gets a fresh backend).
pub fn repeat(
    env: &ExperimentEnv,
    repeats: usize,
    mut make_opts: impl FnMut() -> VoyagerOptions,
) -> RepeatedRuns {
    let runs: Vec<RunMeasurement> = (0..repeats).map(|_| measure(env, make_opts())).collect();
    let totals: Vec<Duration> = runs.iter().map(|r| r.report.total).collect();
    let ios: Vec<Duration> = runs.iter().map(|r| r.report.visible_io).collect();
    let comps: Vec<Duration> = runs.iter().map(|r| r.report.computation).collect();
    RepeatedRuns {
        total: MeanCi::of(&totals),
        visible_io: MeanCi::of(&ios),
        computation: MeanCi::of(&comps),
        runs,
    }
}

/// `100 * (a - b) / a`, the paper's "percent reduced/hidden" formula
/// shape (guards against a = 0).
pub fn percent(a: f64, b: f64) -> f64 {
    if a <= 0.0 {
        0.0
    } else {
        100.0 * (a - b) / a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_env() -> ExperimentEnv {
        let mut genx = GenxConfig::tiny();
        genx.snapshots = 2;
        ExperimentEnv::prepare(Platform::instant(2), &genx)
    }

    fn fast_spec() -> TestSpec {
        let mut spec = TestSpec::simple();
        spec.work_per_op = godiva_platform::Work::from_micros(100);
        spec
    }

    #[test]
    fn measure_counts_io() {
        let env = tiny_env();
        let mut opts = env.voyager_options(fast_spec(), Mode::Original);
        opts.decode_work_per_kib = 0;
        opts.snapshots = vec![0, 1];
        let m = measure(&env, opts);
        assert!(m.bytes_read > 0);
        assert!(m.reads > 0);
        assert_eq!(m.report.images, 2);
    }

    #[test]
    fn repeat_summarizes() {
        let env = tiny_env();
        let rr = repeat(&env, 2, || {
            let mut opts = env.voyager_options(fast_spec(), Mode::GodivaSingle);
            opts.decode_work_per_kib = 0;
            opts.snapshots = vec![0, 1];
            opts
        });
        assert_eq!(rr.runs.len(), 2);
        assert!(rr.total.mean > 0.0);
        assert!(rr.total.mean >= rr.visible_io.mean);
    }

    #[test]
    fn trace_dir_writes_one_file_per_run() {
        let dir = std::env::temp_dir().join(format!("godiva-tracedir-{}", std::process::id()));
        let traces = TraceDir::new(Some(dir.to_str().unwrap()));
        let env = tiny_env();
        let rr = repeat(&env, 2, || {
            let mut opts = env.voyager_options(fast_spec(), Mode::GodivaMulti);
            opts.decode_work_per_kib = 0;
            opts.snapshots = vec![0, 1];
            opts.tracer = traces.next_tracer();
            opts
        });
        drop(rr);
        assert_eq!(traces.runs_traced(), 2);
        for n in 0..2 {
            let path = dir.join(format!("run_{n:04}.jsonl"));
            let meta = std::fs::metadata(&path).expect("trace file exists");
            assert!(meta.len() > 0, "trace file {} is empty", path.display());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_trace_dir_is_free() {
        let traces = TraceDir::new(None);
        assert!(!traces.next_tracer().enabled());
        assert_eq!(traces.runs_traced(), 0);
    }

    #[test]
    fn percent_formula() {
        assert!((percent(200.0, 150.0) - 25.0).abs() < 1e-12);
        assert_eq!(percent(0.0, 5.0), 0.0);
        assert!(percent(100.0, 120.0) < 0.0);
    }
}
