//! Minimal command-line parsing shared by the experiment binaries.

/// Common experiment knobs.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Snapshots to process per run (paper: 32).
    pub snapshots: usize,
    /// Repetitions per configuration (paper: 5; error bars are 95 % CI).
    pub repeats: usize,
    /// Disk-time scale: 1.0 = paper-scale constants, smaller = faster
    /// experiments with identical ratios.
    pub scale: f64,
    /// Use the full 120 481-node paper mesh instead of the scaled one.
    pub full: bool,
    /// Directory to write per-run JSONL event traces into (`None` =
    /// tracing disabled, the default).
    pub trace_dir: Option<String>,
    /// Address to serve live metrics on while the experiment runs
    /// (`curl ADDR/metrics`); `None` = no listener, the default.
    pub metrics_listen: Option<String>,
    /// Path to write a machine-readable JSON summary to, for binaries
    /// that support one (`None` = table output only, the default).
    pub json: Option<String>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            snapshots: 16,
            repeats: 3,
            scale: 0.02,
            full: false,
            trace_dir: None,
            metrics_listen: None,
            json: None,
        }
    }
}

impl HarnessArgs {
    /// Parse from `std::env::args`, exiting with usage on error.
    pub fn parse() -> Self {
        let mut out = HarnessArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--snapshots" => out.snapshots = parse_or_exit(&value("--snapshots")),
                "--repeats" => out.repeats = parse_or_exit(&value("--repeats")),
                "--scale" => out.scale = parse_or_exit(&value("--scale")),
                "--full" => out.full = true,
                "--trace-dir" => out.trace_dir = Some(value("--trace-dir")),
                "--metrics-listen" => out.metrics_listen = Some(value("--metrics-listen")),
                "--json" => out.json = Some(value("--json")),
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--snapshots N] [--repeats R] [--scale S] [--full] \
                         [--trace-dir DIR] [--metrics-listen ADDR] [--json PATH]\n\
                         defaults: --snapshots 16 --repeats 3 --scale 0.02"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        if out.snapshots == 0 || out.repeats == 0 || out.scale < 0.0 {
            eprintln!("snapshots and repeats must be positive; scale non-negative");
            std::process::exit(2);
        }
        out
    }

    /// The GENx configuration for these arguments.
    pub fn genx(&self) -> godiva_genx::GenxConfig {
        let mut c = if self.full {
            godiva_genx::GenxConfig::paper_full()
        } else {
            godiva_genx::GenxConfig::paper_scaled()
        };
        c.snapshots = self.snapshots;
        c
    }
}

fn parse_or_exit<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("cannot parse '{s}'");
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let a = HarnessArgs::default();
        assert!(a.snapshots > 0 && a.repeats > 0 && a.scale > 0.0);
        let c = a.genx();
        assert_eq!(c.snapshots, a.snapshots);
        assert_eq!(c.blocks, 120);
    }

    #[test]
    fn full_flag_switches_mesh() {
        let a = HarnessArgs {
            full: true,
            ..Default::default()
        };
        assert!(a.genx().node_count() > 100_000);
    }
}
