//! Reference numbers from §4.2 of the paper, printed next to measured
//! values so every run is a paper-vs-measured comparison.

/// Per-test reference values reported in the paper's text.
#[derive(Debug, Clone, Copy)]
pub struct PaperTest {
    /// Test name.
    pub name: &'static str,
    /// Total input data per snapshot, MB.
    pub input_mb_per_snapshot: f64,
    /// Read-volume reduction by GODIVA's redundant-read elimination, %.
    pub io_volume_reduction_pct: f64,
    /// I/O *time* reduction of G vs O on Engle, %.
    pub engle_g_io_time_reduction_pct: f64,
    /// Fraction of I/O hidden by TG on Engle, %.
    pub engle_hidden_pct: f64,
    /// Overall input-cost reduction of TG vs O on Engle, %.
    pub engle_overall_pct: f64,
    /// I/O time reduction of G vs O on Turing, %.
    pub turing_g_io_time_reduction_pct: f64,
    /// Maximum overall input-cost reduction on Turing, %.
    pub turing_overall_max_pct: f64,
}

/// The three visualization tests of §4.2.
pub const PAPER_TESTS: [PaperTest; 3] = [
    PaperTest {
        name: "simple",
        input_mb_per_snapshot: 19.2,
        io_volume_reduction_pct: 14.0,
        engle_g_io_time_reduction_pct: 17.6,
        engle_hidden_pct: 24.7,
        engle_overall_pct: 40.9,
        turing_g_io_time_reduction_pct: 16.0,
        turing_overall_max_pct: 93.2,
    },
    PaperTest {
        name: "medium",
        input_mb_per_snapshot: 30.1,
        io_volume_reduction_pct: 24.0,
        engle_g_io_time_reduction_pct: 37.2,
        engle_hidden_pct: 33.1,
        engle_overall_pct: 60.5,
        turing_g_io_time_reduction_pct: 30.0,
        turing_overall_max_pct: 90.3,
    },
    PaperTest {
        name: "complex",
        input_mb_per_snapshot: 16.6,
        io_volume_reduction_pct: 16.0,
        engle_g_io_time_reduction_pct: 20.1,
        engle_hidden_pct: 37.8,
        engle_overall_pct: 61.9,
        turing_g_io_time_reduction_pct: 10.7,
        turing_overall_max_pct: 94.7,
    },
];

/// Range of I/O hidden by TG on Turing across TG1/TG2 and all tests, %.
pub const TURING_HIDDEN_RANGE_PCT: (f64, f64) = (81.1, 90.8);

/// Look up a test's reference values.
pub fn paper_test(name: &str) -> Option<&'static PaperTest> {
    PAPER_TESTS.iter().find(|t| t.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_works() {
        assert_eq!(paper_test("medium").unwrap().io_volume_reduction_pct, 24.0);
        assert!(paper_test("bogus").is_none());
    }

    #[test]
    fn ordering_facts_from_paper() {
        let [s, m, c] = PAPER_TESTS;
        // medium has the biggest dataset and the biggest volume reduction.
        assert!(m.input_mb_per_snapshot > s.input_mb_per_snapshot);
        assert!(m.input_mb_per_snapshot > c.input_mb_per_snapshot);
        assert!(m.io_volume_reduction_pct > s.io_volume_reduction_pct);
        assert!(m.io_volume_reduction_pct > c.io_volume_reduction_pct);
        // hidden fraction grows with computation share on Engle.
        assert!(c.engle_hidden_pct > m.engle_hidden_pct);
        assert!(m.engle_hidden_pct > s.engle_hidden_pct);
    }
}
