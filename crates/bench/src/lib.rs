#![warn(missing_docs)]

//! # godiva-bench — experiment harness
//!
//! Regenerates every table and figure of the GODIVA paper's evaluation
//! (§4.2) plus the ablations listed in DESIGN.md. Each experiment is a
//! binary under `src/bin/`:
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `fig3a` | Figure 3(a): Voyager times on Engle (O/G/TG × 3 tests) |
//! | `fig3b` | Figure 3(b): Voyager times on a Turing node (O/G/TG1/TG2) |
//! | `io_volume` | §4.2 text: read-volume reduction by G vs O |
//! | `parallel_voyager` | §4.2 text: 4-process parallel runs |
//! | `ablation_granularity` | unit granularity (snapshot vs file) |
//! | `ablation_memory` | memory-budget sweep (`setMemSpace`) |
//! | `ablation_eviction` | LRU vs FIFO under a revisit-heavy trace |
//! | `ablation_interactive` | interactive caching benefit |
//! | `format_compare` | SDF vs plain binary input cost |
//! | `ablation_trace_overhead` | event-tracing cost on fig3a-style runs |
//!
//! Criterion micro-benchmarks live under `benches/`.
//!
//! All binaries accept `--snapshots N --repeats R --scale S --full`
//! (see [`HarnessArgs`]); defaults finish in a couple of minutes total.
//! Passing `--trace-dir DIR` additionally writes one JSONL event trace
//! per measured run (see [`TraceDir`]); `--json PATH` writes a
//! machine-readable summary (see [`JsonWriter`]) that `godiva-report
//! diff` compares against the checked-in `results/BENCH_*.json`
//! baselines — that diff is CI's perf gate.

pub mod args;
pub mod harness;
pub mod jsonout;
pub mod paper;
pub mod table;

pub use args::HarnessArgs;
pub use harness::{
    measure, percent, repeat, ExperimentEnv, RepeatedRuns, RunMeasurement, TraceDir,
};
pub use jsonout::JsonWriter;
pub use table::Table;
