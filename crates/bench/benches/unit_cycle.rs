//! Microbenchmark: the unit lifecycle — `addUnit` / `waitUnit` /
//! `deleteUnit` overhead with a trivial read function, isolating the
//! library's own bookkeeping from file I/O.

use criterion::{criterion_group, criterion_main, Criterion};
use godiva_core::{DeclaredSize, FieldKind, Gbo, GboConfig, UnitSession};
use std::hint::black_box;

fn reader(s: &UnitSession) -> godiva_core::Result<()> {
    s.define_field("id", FieldKind::Str, DeclaredSize::Unknown)?;
    s.define_field("payload", FieldKind::F64, DeclaredSize::Unknown)?;
    s.define_record("rec", 1)?;
    s.insert_field("rec", "id", true)?;
    s.insert_field("rec", "payload", false)?;
    s.commit_record_type("rec")?;
    let r = s.new_record("rec")?;
    r.set_str("id", s.unit())?;
    r.set_f64("payload", vec![1.0; 256])?;
    r.commit()
}

fn bench_unit_cycle_single_thread(c: &mut Criterion) {
    let db = Gbo::with_config(GboConfig {
        mem_limit: 1 << 30,
        background_io: false,
        ..Default::default()
    });
    let mut i = 0u64;
    c.bench_function("unit_add_wait_delete_singlethread", |b| {
        b.iter(|| {
            let name = format!("unit{i}");
            i += 1;
            db.add_unit(&name, reader).unwrap();
            db.wait_unit(&name).unwrap();
            db.delete_unit(&name).unwrap();
            black_box(&name);
        });
    });
}

fn bench_unit_cycle_background(c: &mut Criterion) {
    let db = Gbo::with_config(GboConfig {
        mem_limit: 1 << 30,
        background_io: true,
        ..Default::default()
    });
    let mut i = 0u64;
    c.bench_function("unit_add_wait_delete_background", |b| {
        b.iter(|| {
            let name = format!("bg{i}");
            i += 1;
            db.add_unit(&name, reader).unwrap();
            db.wait_unit(&name).unwrap();
            db.delete_unit(&name).unwrap();
            black_box(&name);
        });
    });
}

fn bench_cache_hit_wait(c: &mut Criterion) {
    let db = Gbo::with_config(GboConfig {
        mem_limit: 1 << 30,
        background_io: false,
        ..Default::default()
    });
    db.add_unit("hot", reader).unwrap();
    db.wait_unit("hot").unwrap();
    c.bench_function("wait_unit_cache_hit", |b| {
        b.iter(|| {
            db.wait_unit("hot").unwrap();
            db.finish_unit("hot").unwrap();
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_unit_cycle_single_thread, bench_unit_cycle_background, bench_cache_hit_wait
}
criterion_main!(benches);
