//! Microbenchmark: key-lookup queries against the GODIVA database.
//!
//! `getFieldBuffer` is on Voyager's hot path (two calls per block per
//! pass), so its cost must stay negligible next to I/O. The paper's
//! index is an RB-tree (`std::map`); ours is a `BTreeMap`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use godiva_core::{DeclaredSize, FieldKind, Gbo, GboConfig, Key};
use std::hint::black_box;

fn build_db(records: usize) -> Gbo {
    let db = Gbo::with_config(GboConfig {
        mem_limit: 1 << 30,
        background_io: false,
        ..Default::default()
    });
    db.define_field("block id", FieldKind::Str, DeclaredSize::Known(16))
        .unwrap();
    db.define_field("step id", FieldKind::I64, DeclaredSize::Known(8))
        .unwrap();
    db.define_field("data", FieldKind::F64, DeclaredSize::Unknown)
        .unwrap();
    db.define_record("blk", 2).unwrap();
    db.insert_field("blk", "block id", true).unwrap();
    db.insert_field("blk", "step id", true).unwrap();
    db.insert_field("blk", "data", false).unwrap();
    db.commit_record_type("blk").unwrap();
    for i in 0..records {
        let r = db.new_record("blk").unwrap();
        r.set_str("block id", format!("block_{:06}", i % 1000))
            .unwrap();
        r.set_i64("step id", vec![(i / 1000) as i64]).unwrap();
        r.set_f64("data", vec![i as f64; 64]).unwrap();
        r.commit().unwrap();
    }
    db
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("get_field_buffer");
    for &n in &[100usize, 1_000, 10_000] {
        let db = build_db(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut i = 0usize;
            b.iter(|| {
                let keys = [
                    Key::from(format!("block_{:06}", i % 1000.min(n))),
                    Key::from(((i % n) / 1000) as i64),
                ];
                i += 1;
                black_box(db.get_field_buffer("blk", "data", &keys).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_lookup_miss(c: &mut Criterion) {
    let db = build_db(10_000);
    c.bench_function("get_field_buffer_miss", |b| {
        let keys = [Key::from("no_such_block"), Key::from(0i64)];
        b.iter(|| black_box(db.get_field_buffer("blk", "data", &keys).is_err()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lookup, bench_lookup_miss
}
criterion_main!(benches);
