//! Microbenchmark: SDF container read/write throughput vs plain binary
//! (in memory — no simulated disk — so this isolates the format's CPU
//! cost: serialization, directory handling, checksums, shuffle codec).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use godiva_platform::MemFs;
use godiva_sdf::{plain, Encoding, SdfFile, SdfWriter};
use std::hint::black_box;
use std::sync::Arc;

const ELEMS: usize = 64 * 1024; // 512 KiB of f64

fn bench_write(c: &mut Criterion) {
    let data: Vec<f64> = (0..ELEMS).map(|i| i as f64).collect();
    let mut group = c.benchmark_group("write_512KiB");
    group.throughput(Throughput::Bytes((ELEMS * 8) as u64));
    group.bench_function("sdf_raw", |b| {
        let fs = MemFs::new();
        b.iter(|| {
            let mut w = SdfWriter::create(&fs, "f.sdf");
            w.put_1d("x", &data, vec![]).unwrap();
            black_box(w.finish().unwrap())
        });
    });
    group.bench_function("sdf_shuffle", |b| {
        let fs = MemFs::new();
        b.iter(|| {
            let mut w = SdfWriter::create(&fs, "f.sdf").with_encoding(Encoding::Shuffle);
            w.put_1d("x", &data, vec![]).unwrap();
            black_box(w.finish().unwrap())
        });
    });
    group.bench_function("plain_binary", |b| {
        let fs = MemFs::new();
        b.iter(|| black_box(plain::write_array(&fs, "f.bin", &data).unwrap()));
    });
    group.finish();
}

fn bench_read(c: &mut Criterion) {
    let data: Vec<f64> = (0..ELEMS).map(|i| i as f64).collect();
    let mut group = c.benchmark_group("read_512KiB");
    group.throughput(Throughput::Bytes((ELEMS * 8) as u64));

    for (label, encoding) in [
        ("sdf_raw", Encoding::Raw),
        ("sdf_shuffle", Encoding::Shuffle),
    ] {
        let fs = Arc::new(MemFs::new());
        let mut w = SdfWriter::create(fs.as_ref(), "f.sdf").with_encoding(encoding);
        w.put_1d("x", &data, vec![]).unwrap();
        w.finish().unwrap();
        group.bench_function(label, |b| {
            b.iter(|| {
                let f = SdfFile::open(fs.clone(), "f.sdf").unwrap();
                let v: Vec<f64> = f.read("x").unwrap();
                black_box(v.len())
            });
        });
    }

    let fs = MemFs::new();
    plain::write_array(&fs, "f.bin", &data).unwrap();
    group.bench_function("plain_binary", |b| {
        b.iter(|| {
            let v: Vec<f64> = plain::read_array(&fs, "f.bin").unwrap();
            black_box(v.len())
        });
    });
    group.finish();
}

fn bench_hyperslab(c: &mut Criterion) {
    let data: Vec<f64> = (0..ELEMS).map(|i| i as f64).collect();
    let fs = Arc::new(MemFs::new());
    let mut w = SdfWriter::create(fs.as_ref(), "f.sdf");
    w.put_1d("x", &data, vec![]).unwrap();
    w.finish().unwrap();
    let f = SdfFile::open(fs, "f.sdf").unwrap();
    c.bench_function("sdf_hyperslab_4KiB_of_512KiB", |b| {
        let mut off = 0u64;
        b.iter(|| {
            let v: Vec<f64> = f.read_slab("x", off % (ELEMS as u64 - 512), 512).unwrap();
            off += 512;
            black_box(v.len())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_write, bench_read, bench_hyperslab
}
criterion_main!(benches);
