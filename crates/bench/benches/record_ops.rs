//! Microbenchmark: record creation, buffer fills and commits — the work
//! a developer-supplied read function performs per block (§3.1).

use criterion::{criterion_group, criterion_main, Criterion};
use godiva_core::{DeclaredSize, FieldKind, Gbo, GboConfig};
use std::hint::black_box;

fn fresh_db() -> Gbo {
    let db = Gbo::with_config(GboConfig {
        mem_limit: 1 << 30,
        background_io: false,
        ..Default::default()
    });
    db.define_field("id", FieldKind::I64, DeclaredSize::Known(8))
        .unwrap();
    db.define_field("points", FieldKind::F64, DeclaredSize::Unknown)
        .unwrap();
    db.define_field("conn", FieldKind::I32, DeclaredSize::Unknown)
        .unwrap();
    db.define_record("blk", 1).unwrap();
    db.insert_field("blk", "id", true).unwrap();
    db.insert_field("blk", "points", false).unwrap();
    db.insert_field("blk", "conn", false).unwrap();
    db.commit_record_type("blk").unwrap();
    db
}

fn bench_create_commit(c: &mut Criterion) {
    c.bench_function("record_create_fill_commit", |b| {
        let db = fresh_db();
        let points = vec![0.5f64; 300];
        let conn = vec![7i32; 400];
        let mut i = 0i64;
        b.iter(|| {
            let r = db.new_record("blk").unwrap();
            r.set_i64("id", vec![i]).unwrap();
            r.set_f64("points", points.clone()).unwrap();
            r.set_i32("conn", conn.clone()).unwrap();
            r.commit().unwrap();
            i += 1;
            black_box(r.id())
        });
    });
}

fn bench_schema_redefinition(c: &mut Criterion) {
    // Read functions re-declare the schema every run (§3.1); the
    // idempotent path must be cheap.
    c.bench_function("schema_redefinition_idempotent", |b| {
        let db = fresh_db();
        b.iter(|| {
            db.define_field("points", FieldKind::F64, DeclaredSize::Unknown)
                .unwrap();
            db.define_record("blk", 1).unwrap();
            db.insert_field("blk", "points", false).unwrap();
            db.commit_record_type("blk").unwrap();
        });
    });
}

fn bench_update_in_place(c: &mut Criterion) {
    c.bench_function("field_update_in_place", |b| {
        let db = fresh_db();
        let r = db.new_record("blk").unwrap();
        r.set_i64("id", vec![1]).unwrap();
        r.set_f64("points", vec![0.0; 1024]).unwrap();
        r.commit().unwrap();
        b.iter(|| {
            r.update_field("points", |d| {
                if let godiva_core::FieldData::F64(v) = d {
                    v[0] += 1.0;
                }
            })
            .unwrap();
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_create_commit, bench_schema_redefinition, bench_update_in_place
}
criterion_main!(benches);
