//! Microbenchmark: the visualization filters and the rasterizer — the
//! "computation" side of every Voyager pass.

use criterion::{criterion_group, criterion_main, Criterion};
use godiva_mesh::box_tet_mesh;
use godiva_viz::{isosurface, plane_slice, surface, Camera, ColorMap, Framebuffer, Plane};
use std::hint::black_box;

fn bench_filters(c: &mut Criterion) {
    let mesh = box_tet_mesh(12, 12, 12, 1.0, 1.0, 1.0); // 10 368 tets
    let field: Vec<f64> = mesh
        .points
        .iter()
        .map(|p| ((p[0] - 0.5).powi(2) + (p[1] - 0.5).powi(2) + (p[2] - 0.5).powi(2)).sqrt())
        .collect();
    let mut group = c.benchmark_group("filters_10k_tets");
    group.bench_function("surface", |b| {
        b.iter(|| black_box(surface(&mesh, &field).unwrap().tri_count()));
    });
    group.bench_function("isosurface", |b| {
        b.iter(|| black_box(isosurface(&mesh, &field, 0.35).unwrap().tri_count()));
    });
    group.bench_function("plane_slice", |b| {
        let plane = Plane::through([0.5, 0.5, 0.5], [1.0, 0.3, 0.2]);
        b.iter(|| black_box(plane_slice(&mesh, &field, plane).unwrap().tri_count()));
    });
    group.finish();
}

fn bench_rasterize(c: &mut Criterion) {
    let mesh = box_tet_mesh(12, 12, 12, 1.0, 1.0, 1.0);
    let field: Vec<f64> = mesh.points.iter().map(|p| p[0] + p[1]).collect();
    let soup = surface(&mesh, &field).unwrap();
    let camera = Camera::framing([0.0; 3], [1.0; 3]);
    let cmap = ColorMap::fit(&field, Default::default());
    c.bench_function("rasterize_surface_192x144", |b| {
        let mut fb = Framebuffer::new(192, 144);
        b.iter(|| {
            fb.clear();
            black_box(godiva_viz::raster::rasterize(
                &mut fb, &camera, &cmap, &soup,
            ))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_filters, bench_rasterize
}
criterion_main!(benches);
