//! Failure injection across the whole stack: storage faults must
//! surface as failed units / clean errors — never hangs, panics, or
//! silently wrong data (the SDF checksums catch corruption).

use godiva::core::{GodivaError, RetryPolicy};
use godiva::genx::GenxConfig;
use godiva::platform::{FaultyFs, MemFs, Storage};
use godiva::sdf::ReadOptions;
use godiva::viz::{
    run_voyager, FaultMode, GodivaBackend, GodivaBackendOptions, Granularity, Mode, SnapshotSource,
    TestSpec, VoyagerOptions,
};
use std::sync::Arc;
use std::time::Duration;

fn faulty_dataset() -> (Arc<FaultyFs>, GenxConfig) {
    let mem = Arc::new(MemFs::new());
    let mut genx = GenxConfig::tiny();
    genx.snapshots = 4;
    godiva::genx::generate(mem.as_ref(), &genx).unwrap();
    (Arc::new(FaultyFs::new(mem)), genx)
}

/// Reader-worker count under test. CI reruns this whole suite with
/// `GODIVA_IO_THREADS=2` so every fault path (failed units, retries,
/// panics, timeouts, degraded rendering) is also exercised on a
/// multi-worker executor; unset it defaults to 1, the paper's single
/// background I/O thread.
fn io_threads() -> usize {
    std::env::var("GODIVA_IO_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// CI also reruns the suite with `GODIVA_SPILL_DIR` pointing at a
/// scratch directory: every fault path then runs with the spill tier
/// enabled too, proving fault handling and spilling compose. Each call
/// returns a fresh cache subdirectory so concurrently running tests
/// never share spill files. Unset (the default), spilling stays off —
/// the paper's discard-on-evict behavior.
fn spill_config() -> Option<godiva::core::SpillConfig> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let root = std::env::var("GODIVA_SPILL_DIR").ok()?;
    let fs = godiva::platform::RealFs::new(root).expect("GODIVA_SPILL_DIR must be creatable");
    Some(godiva::core::SpillConfig {
        storage: Arc::new(fs) as Arc<dyn Storage>,
        dir: format!(
            "spill-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ),
        budget: 64 << 20,
    })
}

/// CI also reruns the suite with `GODIVA_WAL_DIR` pointing at a scratch
/// directory: every fault path then journals to a write-ahead log,
/// proving fault handling and durability compose (journal points fire
/// on the exact transitions the faults exercise). Each call returns a
/// fresh subdirectory so concurrent tests never share a log. Unset (the
/// default), journaling stays off.
fn wal_dir() -> Option<std::path::PathBuf> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let root = std::env::var("GODIVA_WAL_DIR").ok()?;
    let dir = std::path::Path::new(&root).join(format!(
        "wal-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    Some(dir)
}

/// `GodivaBackendOptions::batch` with the suite's worker count (and,
/// under `GODIVA_SPILL_DIR` / `GODIVA_WAL_DIR`, spill tier and journal)
/// applied.
fn batch_options(background_io: bool, mem_limit: u64) -> GodivaBackendOptions {
    let mut options =
        GodivaBackendOptions::batch(vec!["stress_avg".into()], background_io, mem_limit);
    options.io_threads = io_threads();
    options.spill = spill_config();
    options.wal_dir = wal_dir();
    options
}

#[test]
fn failing_unit_reports_and_other_units_survive() {
    let (fs, genx) = faulty_dataset();
    fs.fail_paths_with("snap_0001");
    let mut be = GodivaBackend::new(
        fs.clone() as Arc<dyn Storage>,
        genx.clone(),
        ReadOptions::new(),
        batch_options(true, 64 << 20),
    );
    be.begin_run(&[0, 1, 2, 3]).unwrap();
    // Healthy snapshots before and after the bad one load fine.
    assert!(be.load_pass(0, "stress_avg").is_ok());
    be.end_snapshot(0).unwrap();
    let err = be.load_pass(1, "stress_avg").unwrap_err();
    assert!(
        matches!(
            err,
            godiva::viz::VizError::Godiva(GodivaError::ReadFailed { .. })
        ),
        "got: {err}"
    );
    assert!(be.load_pass(2, "stress_avg").is_ok());
    be.end_snapshot(2).unwrap();
    assert!(fs.injected() > 0);
    let stats = be.gbo_stats().unwrap();
    assert_eq!(stats.units_failed, 1);
}

#[test]
fn failed_unit_recovers_after_fault_clears() {
    let (fs, genx) = faulty_dataset();
    fs.fail_paths_with("snap_0000");
    let db = godiva::core::Gbo::with_config(godiva::core::GboConfig {
        mem_limit: 64 << 20,
        background_io: true,
        io_threads: io_threads(),
        spill: spill_config(),
        wal_dir: wal_dir(),
        ..Default::default()
    });
    let storage = fs.clone() as Arc<dyn Storage>;
    let genx2 = genx.clone();
    let reader = move |s: &godiva::core::UnitSession| {
        // Minimal read function touching the faulty file.
        let path = genx2.file_path(0, 0);
        let file = godiva::sdf::SdfFile::open(storage.clone(), path)
            .map_err(|e| GodivaError::UnitError(e.to_string()))?;
        s.define_field(
            "t",
            godiva::core::FieldKind::F64,
            godiva::core::DeclaredSize::Unknown,
        )?;
        s.define_record("meta", 0)?;
        s.insert_field("meta", "t", false)?;
        s.commit_record_type("meta")?;
        let rec = s.new_record("meta")?;
        rec.set_f64(
            "t",
            file.read("meta.time")
                .map_err(|e| GodivaError::UnitError(e.to_string()))?,
        )?;
        rec.commit()
    };
    db.add_unit("u", reader.clone()).unwrap();
    assert!(db.wait_unit("u").is_err(), "fault must fail the unit");
    // Clear the fault, reset the unit, retry.
    fs.clear_faults();
    db.delete_unit("u").unwrap();
    db.add_unit("u", reader).unwrap();
    db.wait_unit("u").unwrap();
}

#[test]
fn corruption_is_caught_by_checksums_not_rendered() {
    let (fs, genx) = faulty_dataset();
    fs.corrupt_paths_with("snap_0002");
    let mut be = GodivaBackend::new(
        fs as Arc<dyn Storage>,
        genx,
        ReadOptions::new(),
        batch_options(false, 64 << 20),
    );
    be.begin_run(&[2]).unwrap();
    let err = be.load_pass(2, "stress_avg").unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("checksum") || msg.contains("corrupt") || msg.contains("truncated"),
        "corruption must be detected, got: {msg}"
    );
}

#[test]
fn retry_policy_recovers_transient_fault() {
    let (fs, genx) = faulty_dataset();
    // The first two reads touching snapshot 0 fail, then the fault
    // clears — within a 3-attempt budget.
    fs.fail_first_k_reads_of("snap_0000", 2);
    let mut options = batch_options(false, 64 << 20);
    options.retry = RetryPolicy::new(3, Duration::from_millis(1), Duration::from_millis(4));
    let mut be = GodivaBackend::new(
        fs.clone() as Arc<dyn Storage>,
        genx.clone(),
        ReadOptions::new(),
        options,
    );
    be.begin_run(&[0]).unwrap();
    be.db().wait_unit(&genx.snapshot_name(0)).unwrap();
    assert!(be.load_pass(0, "stress_avg").is_ok());
    let stats = be.gbo_stats().unwrap();
    assert!(stats.units_retried >= 1, "retries must be counted");
    assert_eq!(stats.units_failed, 0);
    assert!(fs.injected() >= 2);
}

#[test]
fn transient_fault_without_retries_fails_unit() {
    let (fs, genx) = faulty_dataset();
    fs.fail_first_k_reads_of("snap_0000", 2);
    // Default options: RetryPolicy::none().
    let mut be = GodivaBackend::new(
        fs as Arc<dyn Storage>,
        genx.clone(),
        ReadOptions::new(),
        batch_options(false, 64 << 20),
    );
    be.begin_run(&[0]).unwrap();
    let err = be.db().wait_unit(&genx.snapshot_name(0)).unwrap_err();
    assert!(matches!(err, GodivaError::ReadFailed { .. }), "got: {err}");
    assert_eq!(be.gbo_stats().unwrap().units_retried, 0);
}

#[test]
fn panicking_read_function_is_contained() {
    let db = godiva::core::Gbo::with_config(godiva::core::GboConfig {
        mem_limit: 64 << 20,
        background_io: true,
        io_threads: io_threads(),
        spill: spill_config(),
        wal_dir: wal_dir(),
        ..Default::default()
    });
    db.add_unit(
        "boom",
        |_s: &godiva::core::UnitSession| -> godiva::core::Result<()> {
            panic!("read function exploded")
        },
    )
    .unwrap();
    let err = db.wait_unit("boom").unwrap_err();
    assert!(matches!(err, GodivaError::ReadFailed { .. }), "got: {err}");
    assert!(err.to_string().contains("panicked"), "got: {err}");
    // The background I/O thread survived the panic: a healthy unit
    // added afterwards still loads.
    db.add_unit("ok", |_s: &godiva::core::UnitSession| Ok(()))
        .unwrap();
    db.wait_unit("ok").unwrap();
    let stats = db.stats();
    assert_eq!(stats.panics_caught, 1);
}

#[test]
fn reset_unit_requeues_after_fault_clears() {
    let (fs, genx) = faulty_dataset();
    fs.fail_paths_with("snap_0000");
    let mut be = GodivaBackend::new(
        fs.clone() as Arc<dyn Storage>,
        genx.clone(),
        ReadOptions::new(),
        batch_options(false, 64 << 20),
    );
    be.begin_run(&[0]).unwrap();
    let name = genx.snapshot_name(0);
    assert!(be.db().wait_unit(&name).is_err());
    // The fault clears; no delete/re-add dance needed any more.
    fs.clear_faults();
    be.db().reset_unit(&name).unwrap();
    be.db().wait_unit(&name).unwrap();
    assert!(be.load_pass(0, "stress_avg").is_ok());
    assert_eq!(be.gbo_stats().unwrap().units_reset, 1);
}

#[test]
fn wait_unit_timeout_expires_then_unit_arrives() {
    let (fs, genx) = faulty_dataset();
    fs.set_read_latency(Duration::from_millis(60));
    let mut be = GodivaBackend::new(
        fs as Arc<dyn Storage>,
        genx.clone(),
        ReadOptions::new(),
        batch_options(true, 64 << 20),
    );
    be.begin_run(&[0]).unwrap();
    let name = genx.snapshot_name(0);
    let err = be
        .db()
        .wait_unit_timeout(&name, Duration::from_millis(1))
        .unwrap_err();
    assert!(matches!(err, GodivaError::WaitTimeout { .. }), "got: {err}");
    // A patient wait still gets the unit.
    be.db().wait_unit(&name).unwrap();
    assert_eq!(be.gbo_stats().unwrap().wait_timeouts, 1);
}

#[test]
fn voyager_run_fails_cleanly_under_faults() {
    let (fs, genx) = faulty_dataset();
    fs.fail_paths_with("file_1");
    for mode in [Mode::Original, Mode::GodivaSingle, Mode::GodivaMulti] {
        let mut opts = VoyagerOptions::new(
            fs.clone() as Arc<dyn Storage>,
            godiva::platform::CpuPool::new(2, 4.0),
            genx.clone(),
            TestSpec::simple(),
            mode,
        );
        opts.decode_work_per_kib = 0;
        opts.spec.work_per_op = godiva::platform::Work::ZERO;
        opts.io_threads = io_threads();
        let err = run_voyager(opts);
        assert!(err.is_err(), "{mode:?} must propagate the fault");
    }
}

#[test]
fn transient_single_read_fault_hits_exactly_one_mode_run() {
    let (fs, genx) = faulty_dataset();
    // Fault on the 5th read only: the first run trips it, a rerun works.
    fs.fail_nth_read(5);
    let mut opts = VoyagerOptions::new(
        fs.clone() as Arc<dyn Storage>,
        godiva::platform::CpuPool::new(2, 4.0),
        genx.clone(),
        TestSpec::simple(),
        Mode::Original,
    );
    opts.decode_work_per_kib = 0;
    opts.spec.work_per_op = godiva::platform::Work::ZERO;
    assert!(run_voyager(opts).is_err());
    let mut opts2 = VoyagerOptions::new(
        fs as Arc<dyn Storage>,
        godiva::platform::CpuPool::new(2, 4.0),
        genx,
        TestSpec::simple(),
        Mode::Original,
    );
    opts2.decode_work_per_kib = 0;
    opts2.spec.work_per_op = godiva::platform::Work::ZERO;
    assert!(run_voyager(opts2).is_ok(), "fault was transient");
}

fn degrade_opts(fs: Arc<FaultyFs>, genx: GenxConfig, mode: Mode) -> VoyagerOptions {
    let mut opts = VoyagerOptions::new(
        fs as Arc<dyn Storage>,
        godiva::platform::CpuPool::new(2, 4.0),
        genx,
        TestSpec::simple(),
        mode,
    );
    opts.decode_work_per_kib = 0;
    opts.spec.work_per_op = godiva::platform::Work::ZERO;
    opts.fault_mode = FaultMode::Degrade;
    opts.io_threads = io_threads();
    opts.spill = spill_config();
    opts.wal_dir = wal_dir();
    opts
}

/// Every (snapshot, block) pair stored in file 1, for all 4 snapshots.
fn file1_blocks(genx: &GenxConfig) -> Vec<(usize, usize)> {
    (0..genx.snapshots)
        .flat_map(|s| genx.blocks_in_file(1).map(move |b| (s, b)))
        .collect()
}

#[test]
fn degraded_original_skips_faulty_file_and_renders_the_rest() {
    let (fs, genx) = faulty_dataset();
    fs.fail_paths_with("file_1"); // persistent: one file of every snapshot
    let r = run_voyager(degrade_opts(fs, genx.clone(), Mode::Original)).unwrap();
    // Blocks outside file 1 still rendered one image per snapshot.
    assert_eq!(r.images, genx.snapshots);
    assert!(r.fault_report.snapshots_skipped.is_empty());
    assert_eq!(r.fault_report.blocks_skipped, file1_blocks(&genx));
}

#[test]
fn degraded_godiva_snapshot_units_skip_whole_snapshots() {
    let (fs, genx) = faulty_dataset();
    fs.fail_paths_with("file_1");
    for mode in [Mode::GodivaSingle, Mode::GodivaMulti] {
        let r = run_voyager(degrade_opts(fs.clone(), genx.clone(), mode)).unwrap();
        // Snapshot-granularity units read all files, so the persistent
        // fault fails every unit: the run completes with zero images
        // and reports every snapshot as skipped.
        assert_eq!(r.images, 0, "{mode:?}");
        assert_eq!(
            r.fault_report.snapshots_skipped,
            (0..genx.snapshots).collect::<Vec<_>>(),
            "{mode:?}"
        );
    }
}

#[test]
fn degraded_godiva_file_units_skip_only_faulty_file() {
    let (fs, genx) = faulty_dataset();
    fs.fail_paths_with("file_1");
    let mut opts = degrade_opts(fs, genx.clone(), Mode::GodivaMulti);
    opts.granularity = Granularity::File;
    let r = run_voyager(opts).unwrap();
    assert_eq!(r.images, genx.snapshots);
    assert!(r.fault_report.snapshots_skipped.is_empty());
    assert_eq!(r.fault_report.blocks_skipped, file1_blocks(&genx));
}

#[test]
fn corrupted_spill_frame_falls_back_to_read_function() {
    use godiva::core::{DeclaredSize, FieldKind, Key, UnitSession};
    // The dataset is synthesized by the read function; only the spill
    // cache sits behind the fault injector.
    let spill_fs = Arc::new(FaultyFs::new(Arc::new(MemFs::new())));
    let payload = 8 * 1024usize;
    let db = godiva::core::Gbo::with_config(godiva::core::GboConfig {
        // Room for ~1.5 units: loading the second unit must evict the
        // first, and the first's buffers go to the spill cache.
        mem_limit: (payload * 2) as u64,
        background_io: false,
        spill: Some(godiva::core::SpillConfig {
            storage: spill_fs.clone() as Arc<dyn Storage>,
            dir: "spill".into(),
            budget: 1 << 20,
        }),
        wal_dir: wal_dir(),
        ..Default::default()
    });
    let reader = move |s: &UnitSession| {
        s.define_field("id", FieldKind::Str, DeclaredSize::Unknown)?;
        s.define_field("payload", FieldKind::F64, DeclaredSize::Unknown)?;
        s.define_record("rec", 1)?;
        s.insert_field("rec", "id", true)?;
        s.insert_field("rec", "payload", false)?;
        s.commit_record_type("rec")?;
        let r = s.new_record("rec")?;
        let seed = s.unit().len() as f64; // distinct data per unit
        r.set_str("id", s.unit())?;
        r.set_f64("payload", vec![seed; payload / 8])?;
        r.commit()
    };
    let query = |unit: &str| -> Vec<f64> {
        db.get_field_buffer("rec", "payload", &[Key::from(unit)])
            .unwrap()
            .f64s()
            .unwrap()
            .to_vec()
    };
    db.add_unit("a", reader).unwrap();
    db.wait_unit("a").unwrap();
    let original = query("a");
    db.finish_unit("a").unwrap();
    // Loading "bb" overflows the budget: "a" is evicted and spilled.
    db.add_unit("bb", reader).unwrap();
    db.wait_unit("bb").unwrap();
    db.finish_unit("bb").unwrap();
    assert!(db.stats().spill_writes >= 1, "eviction must have spilled");
    // From now on every spill-cache read hands back a flipped byte.
    spill_fs.corrupt_paths_with("spill/");
    // The revisit detects the bad checksum, drops the cache file, and
    // transparently re-runs the read function instead.
    db.wait_unit("a").unwrap();
    assert_eq!(original, query("a"), "fallback must reproduce the data");
    let stats = db.stats();
    assert_eq!(stats.spill_corrupt, 1, "corruption must be counted");
    assert_eq!(stats.spill_hits, 0, "a mangled frame is not a hit");
    assert!(spill_fs.injected() >= 1);
}

#[test]
fn degrade_with_retries_absorbs_transient_fault_without_skips() {
    let (fs, genx) = faulty_dataset();
    fs.fail_first_k_reads_of("snap_0000", 2);
    let mut opts = degrade_opts(fs, genx.clone(), Mode::GodivaSingle);
    opts.retry = RetryPolicy::new(3, Duration::from_millis(1), Duration::from_millis(4));
    let r = run_voyager(opts).unwrap();
    assert_eq!(r.images, genx.snapshots);
    assert!(r.fault_report.blocks_skipped.is_empty());
    assert!(r.fault_report.snapshots_skipped.is_empty());
    assert!(r.fault_report.units_retried >= 1);
}
