//! Failure injection across the whole stack: storage faults must
//! surface as failed units / clean errors — never hangs, panics, or
//! silently wrong data (the SDF checksums catch corruption).

use godiva::core::GodivaError;
use godiva::genx::GenxConfig;
use godiva::platform::{FaultyFs, MemFs, Storage};
use godiva::sdf::ReadOptions;
use godiva::viz::{
    run_voyager, GodivaBackend, GodivaBackendOptions, Mode, SnapshotSource, TestSpec,
    VoyagerOptions,
};
use std::sync::Arc;

fn faulty_dataset() -> (Arc<FaultyFs>, GenxConfig) {
    let mem = Arc::new(MemFs::new());
    let mut genx = GenxConfig::tiny();
    genx.snapshots = 4;
    godiva::genx::generate(mem.as_ref(), &genx).unwrap();
    (Arc::new(FaultyFs::new(mem)), genx)
}

#[test]
fn failing_unit_reports_and_other_units_survive() {
    let (fs, genx) = faulty_dataset();
    fs.fail_paths_with("snap_0001");
    let mut be = GodivaBackend::new(
        fs.clone() as Arc<dyn Storage>,
        genx.clone(),
        ReadOptions::new(),
        GodivaBackendOptions::batch(vec!["stress_avg".into()], true, 64 << 20),
    );
    be.begin_run(&[0, 1, 2, 3]).unwrap();
    // Healthy snapshots before and after the bad one load fine.
    assert!(be.load_pass(0, "stress_avg").is_ok());
    be.end_snapshot(0).unwrap();
    let err = be.load_pass(1, "stress_avg").unwrap_err();
    assert!(
        matches!(
            err,
            godiva::viz::VizError::Godiva(GodivaError::ReadFailed { .. })
        ),
        "got: {err}"
    );
    assert!(be.load_pass(2, "stress_avg").is_ok());
    be.end_snapshot(2).unwrap();
    assert!(fs.injected() > 0);
    let stats = be.gbo_stats().unwrap();
    assert_eq!(stats.units_failed, 1);
}

#[test]
fn failed_unit_recovers_after_fault_clears() {
    let (fs, genx) = faulty_dataset();
    fs.fail_paths_with("snap_0000");
    let db = godiva::core::Gbo::with_config(godiva::core::GboConfig {
        mem_limit: 64 << 20,
        background_io: true,
        ..Default::default()
    });
    let storage = fs.clone() as Arc<dyn Storage>;
    let genx2 = genx.clone();
    let reader = move |s: &godiva::core::UnitSession| {
        // Minimal read function touching the faulty file.
        let path = genx2.file_path(0, 0);
        let file = godiva::sdf::SdfFile::open(storage.clone(), path)
            .map_err(|e| GodivaError::UnitError(e.to_string()))?;
        s.define_field(
            "t",
            godiva::core::FieldKind::F64,
            godiva::core::DeclaredSize::Unknown,
        )?;
        s.define_record("meta", 0)?;
        s.insert_field("meta", "t", false)?;
        s.commit_record_type("meta")?;
        let rec = s.new_record("meta")?;
        rec.set_f64(
            "t",
            file.read("meta.time")
                .map_err(|e| GodivaError::UnitError(e.to_string()))?,
        )?;
        rec.commit()
    };
    db.add_unit("u", reader.clone()).unwrap();
    assert!(db.wait_unit("u").is_err(), "fault must fail the unit");
    // Clear the fault, reset the unit, retry.
    fs.clear_faults();
    db.delete_unit("u").unwrap();
    db.add_unit("u", reader).unwrap();
    db.wait_unit("u").unwrap();
}

#[test]
fn corruption_is_caught_by_checksums_not_rendered() {
    let (fs, genx) = faulty_dataset();
    fs.corrupt_paths_with("snap_0002");
    let mut be = GodivaBackend::new(
        fs as Arc<dyn Storage>,
        genx,
        ReadOptions::new(),
        GodivaBackendOptions::batch(vec!["stress_avg".into()], false, 64 << 20),
    );
    be.begin_run(&[2]).unwrap();
    let err = be.load_pass(2, "stress_avg").unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("checksum") || msg.contains("corrupt") || msg.contains("truncated"),
        "corruption must be detected, got: {msg}"
    );
}

#[test]
fn voyager_run_fails_cleanly_under_faults() {
    let (fs, genx) = faulty_dataset();
    fs.fail_paths_with("file_1");
    for mode in [Mode::Original, Mode::GodivaSingle, Mode::GodivaMulti] {
        let mut opts = VoyagerOptions::new(
            fs.clone() as Arc<dyn Storage>,
            godiva::platform::CpuPool::new(2, 4.0),
            genx.clone(),
            TestSpec::simple(),
            mode,
        );
        opts.decode_work_per_kib = 0;
        opts.spec.work_per_op = godiva::platform::Work::ZERO;
        let err = run_voyager(opts);
        assert!(err.is_err(), "{mode:?} must propagate the fault");
    }
}

#[test]
fn transient_single_read_fault_hits_exactly_one_mode_run() {
    let (fs, genx) = faulty_dataset();
    // Fault on the 5th read only: the first run trips it, a rerun works.
    fs.fail_nth_read(5);
    let mut opts = VoyagerOptions::new(
        fs.clone() as Arc<dyn Storage>,
        godiva::platform::CpuPool::new(2, 4.0),
        genx.clone(),
        TestSpec::simple(),
        Mode::Original,
    );
    opts.decode_work_per_kib = 0;
    opts.spec.work_per_op = godiva::platform::Work::ZERO;
    assert!(run_voyager(opts).is_err());
    let mut opts2 = VoyagerOptions::new(
        fs as Arc<dyn Storage>,
        godiva::platform::CpuPool::new(2, 4.0),
        genx,
        TestSpec::simple(),
        Mode::Original,
    );
    opts2.decode_work_per_kib = 0;
    opts2.spec.work_per_op = godiva::platform::Work::ZERO;
    assert!(run_voyager(opts2).is_ok(), "fault was transient");
}
