//! Property and edge-case tests for the power-of-two latency histogram
//! behind `gbo.wait_latency_us` and friends.
//!
//! The histogram's contract: recording is lossless in count and sum,
//! quantile estimates are monotone in `q`, bounded by the true maximum,
//! and never more than one power of two above the true value; the top
//! bucket absorbs arbitrarily large values without losing any of that.

use godiva::obs::{Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

#[test]
fn empty_histogram_has_no_quantiles() {
    let snap = Histogram::new().snapshot();
    assert_eq!(snap.count, 0);
    assert_eq!(snap.quantile_us(0.0), None);
    assert_eq!(snap.quantile_us(0.5), None);
    assert_eq!(snap.quantile_us(0.99), None);
    assert_eq!(snap.mean_us(), None);
    assert!(snap.buckets.is_empty());
    assert!(snap.summary().contains("n/a"));
}

#[test]
fn single_sample_dominates_every_quantile() {
    let h = Histogram::new();
    h.record_us(300);
    let snap = h.snapshot();
    assert_eq!(snap.count, 1);
    assert_eq!(snap.sum_us, 300);
    assert_eq!(snap.max_us, 300);
    // The bucket bound would be 512, but the true max caps the estimate.
    for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(snap.quantile_us(q), Some(300));
    }
    assert_eq!(snap.mean_us(), Some(300));
}

#[test]
fn top_bucket_saturates_without_losing_counts() {
    let h = Histogram::new();
    let top_bound = 1u64 << (HISTOGRAM_BUCKETS - 1);
    // Values past the top bucket's bound — including u64::MAX — all land
    // in the last bucket.
    h.record_us(u64::MAX);
    h.record_us(1 << 50);
    h.record_us(top_bound);
    let snap = h.snapshot();
    assert_eq!(snap.count, 3);
    assert_eq!(snap.max_us, u64::MAX);
    assert_eq!(snap.buckets.len(), 1, "one saturated bucket");
    assert_eq!(snap.buckets[0], (top_bound, 3));
    // Quantiles stay bounded by the real maximum even when the bucket
    // bound underestimates it.
    assert_eq!(snap.quantile_us(0.5), Some(top_bound));
    assert_eq!(snap.quantile_us(1.0), Some(top_bound));
}

#[test]
fn zero_and_one_share_the_smallest_buckets() {
    let h = Histogram::new();
    h.record_us(0);
    h.record_us(1);
    let snap = h.snapshot();
    assert_eq!(snap.count, 2);
    assert_eq!(snap.sum_us, 1);
    // Quantiles are upper-bound estimates: the zero bucket's bound is 1.
    assert_eq!(snap.quantile_us(0.01), Some(1));
    assert_eq!(snap.quantile_us(1.0), Some(1));
    assert_eq!(snap.buckets, vec![(1, 1), (2, 1)]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Count and sum are conserved exactly, max is the true max, and
    /// every bucket's occupancy adds up.
    #[test]
    fn count_sum_max_are_lossless(values in prop::collection::vec(0u64..1 << 28, 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record_us(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum_us, values.iter().sum::<u64>());
        prop_assert_eq!(snap.max_us, *values.iter().max().unwrap());
        prop_assert_eq!(snap.buckets.iter().map(|&(_, n)| n).sum::<u64>(), snap.count);
    }

    /// quantile_us is monotone non-decreasing in q, bounded by max_us,
    /// and within one power of two of the true quantile.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in prop::collection::vec(0u64..1 << 30, 1..150),
        qs_permille in prop::collection::vec(0u64..=1000, 2..8),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record_us(v);
        }
        let snap = h.snapshot();
        let mut qs: Vec<f64> = qs_permille.iter().map(|&p| p as f64 / 1000.0).collect();
        qs.sort_by(f64::total_cmp);
        let estimates: Vec<u64> = qs
            .iter()
            .map(|&q| snap.quantile_us(q).expect("non-empty"))
            .collect();
        for pair in estimates.windows(2) {
            prop_assert!(pair[0] <= pair[1], "quantiles not monotone: {:?}", estimates);
        }
        let max = *values.iter().max().unwrap();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for (&q, &est) in qs.iter().zip(&estimates) {
            prop_assert!(est <= max, "estimate {est} above true max {max}");
            // The bucket upper bound over-estimates by at most 2x (one
            // power of two), and never under-estimates the true
            // q-quantile value.
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            prop_assert!(
                est >= truth,
                "q={q}: estimate {est} below true quantile {truth}"
            );
            prop_assert!(
                est <= truth.saturating_mul(2).max(1).min(max),
                "q={q}: estimate {est} more than 2x true quantile {truth}"
            );
        }
    }

    /// Windowed (delta) quantiles stay inside the cumulative
    /// histogram's range: splitting a recording at any point and
    /// subtracting the earlier snapshot yields a window whose counts
    /// balance exactly and whose quantile estimates never exceed the
    /// cumulative max (nor the cumulative estimate at q=1) — the
    /// invariant the health engine's sliding windows rely on.
    #[test]
    fn windowed_delta_quantiles_stay_in_cumulative_range(
        values in prop::collection::vec(0u64..1 << 30, 1..150),
        split_permille in 0u64..=1000,
        qs_permille in prop::collection::vec(0u64..=1000, 1..6),
    ) {
        let split = (values.len() as u64 * split_permille / 1000) as usize;
        let h = Histogram::new();
        for &v in &values[..split] {
            h.record_us(v);
        }
        let earlier = h.snapshot();
        for &v in &values[split..] {
            h.record_us(v);
        }
        let cumulative = h.snapshot();
        let window = cumulative.delta(&earlier);

        // Counts and sums balance exactly.
        prop_assert_eq!(window.count, (values.len() - split) as u64);
        prop_assert_eq!(window.sum_us, values[split..].iter().sum::<u64>());
        prop_assert_eq!(
            window.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
            window.count
        );

        let cumulative_top = cumulative.quantile_us(1.0);
        for &p in &qs_permille {
            let q = p as f64 / 1000.0;
            match window.quantile_us(q) {
                None => prop_assert_eq!(window.count, 0),
                Some(wq) => {
                    prop_assert!(
                        wq <= cumulative.max_us,
                        "window q={q} estimate {wq} above cumulative max {}",
                        cumulative.max_us
                    );
                    prop_assert!(
                        Some(wq) <= cumulative_top,
                        "window q={q} estimate {wq} above cumulative q=1 {cumulative_top:?}"
                    );
                }
            }
        }
        // Degenerate splits collapse correctly: everything-in-window
        // equals the cumulative snapshot, nothing-in-window is empty.
        if split == 0 {
            prop_assert_eq!(&window.buckets, &cumulative.buckets);
        }
        if split == values.len() {
            prop_assert!(window.buckets.is_empty());
        }
    }

    /// A snapshot round-trips through the registry's JSON rendering with
    /// its headline numbers intact.
    #[test]
    fn snapshot_survives_json_rendering(values in prop::collection::vec(0u64..1 << 20, 0..50)) {
        use godiva::obs::{parse_json, JsonValue, MetricsRegistry};
        let reg = MetricsRegistry::new();
        let h = reg.histogram("gbo.wait_latency_us");
        for &v in &values {
            h.record_us(v);
        }
        let parsed = parse_json(&reg.render_json()).expect("valid JSON");
        let m = parsed.get("gbo.wait_latency_us").expect("present");
        prop_assert_eq!(
            m.get("count").and_then(|x| x.as_u64()),
            Some(values.len() as u64)
        );
        prop_assert_eq!(
            m.get("sum_us").and_then(|x| x.as_u64()),
            Some(values.iter().sum::<u64>())
        );
        if values.is_empty() {
            prop_assert!(matches!(m.get("p50_us"), Some(JsonValue::Null)));
        } else {
            prop_assert!(m.get("p50_us").and_then(|x| x.as_u64()).is_some());
        }
    }
}

/// The snapshot type itself (constructed by hand, as analyze/report
/// consumers might) keeps quantile semantics.
#[test]
fn handmade_snapshot_quantiles() {
    let snap = HistogramSnapshot {
        count: 10,
        sum_us: 1000,
        max_us: 700,
        buckets: vec![(128, 5), (1024, 5)],
    };
    assert_eq!(snap.quantile_us(0.5), Some(128));
    // Bound 1024 capped by max 700.
    assert_eq!(snap.quantile_us(0.9), Some(700));
    assert_eq!(snap.mean_us(), Some(100));
}
