//! Property tests for the retry/backoff machinery: the attempt budget
//! is never exceeded, backoff sleeps stay within the policy's bound,
//! and a fault that clears inside the budget always yields a Ready
//! unit.

use godiva::core::{Gbo, GboConfig, GodivaError, RetryPolicy};
use godiva::platform::{FaultyFs, MemFs, Storage};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A database with inline reads (deterministic, single-threaded) and
/// the given retry policy. Backoffs are microseconds so 256 cases of
/// worst-case sleeping stay fast.
fn db_with(policy: RetryPolicy) -> Gbo {
    Gbo::with_config(GboConfig {
        mem_limit: 1 << 20,
        background_io: false,
        retry: policy,
        ..Default::default()
    })
}

fn transient_err() -> GodivaError {
    GodivaError::Io {
        kind: std::io::ErrorKind::TimedOut,
        message: "flaky storage".into(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A read function that fails `failures` times before succeeding is
    /// invoked exactly `min(failures + 1, budget)` times, and the unit
    /// ends Ready iff the fault cleared within the budget.
    #[test]
    fn attempts_bounded_and_ready_iff_fault_clears_in_budget(
        max_attempts in 1u32..6,
        failures in 0u32..8,
    ) {
        let policy = RetryPolicy::new(
            max_attempts,
            Duration::from_micros(5),
            Duration::from_micros(20),
        );
        let db = db_with(policy.clone());
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        db.add_unit("u", move |_s: &godiva::core::UnitSession| {
            if c.fetch_add(1, Ordering::SeqCst) < failures {
                Err(transient_err())
            } else {
                Ok(())
            }
        }).unwrap();
        let result = db.wait_unit("u");
        let budget = policy.attempts();
        let expected_calls = (failures + 1).min(budget);
        prop_assert_eq!(calls.load(Ordering::SeqCst), expected_calls);
        prop_assert_eq!(result.is_ok(), failures < budget);
        let stats = db.stats();
        prop_assert_eq!(stats.units_retried, u64::from(expected_calls - 1));
        prop_assert!(stats.retry_backoff_total <= policy.max_total_backoff());
    }

    /// Permanent errors are never retried, whatever the budget says.
    #[test]
    fn permanent_errors_short_circuit_the_budget(max_attempts in 1u32..6) {
        let db = db_with(RetryPolicy::new(
            max_attempts,
            Duration::from_micros(1),
            Duration::from_micros(4),
        ));
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        db.add_unit("u", move |_s: &godiva::core::UnitSession| {
            c.fetch_add(1, Ordering::SeqCst);
            Err(GodivaError::Io {
                kind: std::io::ErrorKind::NotFound,
                message: "gone for good".into(),
            })
        }).unwrap();
        prop_assert!(db.wait_unit("u").is_err());
        prop_assert_eq!(calls.load(Ordering::SeqCst), 1);
        prop_assert_eq!(db.stats().units_retried, 0);
    }

    /// Per-sleep and total backoff never exceed the policy's caps, and
    /// the sequence is monotonically non-decreasing (exponential until
    /// the cap).
    #[test]
    fn backoff_schedule_is_capped_and_monotone(
        max_attempts in 1u32..50,
        base_us in 0u64..1_000,
        max_us in 0u64..1_000,
    ) {
        let policy = RetryPolicy::new(
            max_attempts,
            Duration::from_micros(base_us),
            Duration::from_micros(max_us),
        );
        let mut total = Duration::ZERO;
        let mut prev = Duration::ZERO;
        for attempt in 1..policy.attempts() {
            let b = policy.backoff_for(attempt);
            prop_assert!(b <= policy.max_backoff);
            prop_assert!(b >= prev);
            prev = b;
            total += b;
        }
        prop_assert_eq!(total, policy.max_total_backoff());
    }

    /// End to end through real (faulty) storage: if the injected fault
    /// clears within the attempt budget, the unit always becomes Ready
    /// and the observed retry count matches the injected fault count.
    #[test]
    fn storage_fault_clearing_within_budget_yields_ready(
        injected in 0u64..4,
        extra_budget in 0u32..3,
    ) {
        let mem = Arc::new(MemFs::new());
        mem.write("blob", b"payload").unwrap();
        let fs = Arc::new(FaultyFs::new(mem));
        fs.fail_first_k_reads_of("blob", injected);
        let db = db_with(RetryPolicy::new(
            injected as u32 + 1 + extra_budget,
            Duration::from_micros(5),
            Duration::from_micros(20),
        ));
        let storage = fs.clone() as Arc<dyn Storage>;
        db.add_unit("u", move |_s: &godiva::core::UnitSession| {
            storage.read("blob").map_err(GodivaError::from)?;
            Ok(())
        }).unwrap();
        db.wait_unit("u").unwrap();
        prop_assert_eq!(db.stats().units_retried, injected);
        prop_assert_eq!(fs.injected(), injected);
    }
}
