//! Integration tests for the monitoring stack: the crash flight
//! recorder's post-mortem dump, the live metrics HTTP exporter, and the
//! trace-analytics attribution, all driven through real database runs.

use godiva::core::{DeclaredSize, FieldKind, Gbo, GboConfig, UnitSession};
use godiva::obs::{
    analyze_trace, parse_json, FlightRecorder, JsonValue, JsonlSink, MetricsRegistry,
    MetricsServer, Snapshotter, Tracer,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// A database whose schema is ready for `payload_reader` units.
fn payload_db(config: GboConfig) -> Gbo {
    let db = Gbo::with_config(config);
    db.define_field("id", FieldKind::Str, DeclaredSize::Known(16))
        .unwrap();
    db.define_field("payload", FieldKind::F64, DeclaredSize::Unknown)
        .unwrap();
    db.define_record("rec", 1).unwrap();
    db.insert_field("rec", "id", true).unwrap();
    db.insert_field("rec", "payload", false).unwrap();
    db.commit_record_type("rec").unwrap();
    db
}

/// A read function creating one record with `values` f64s.
fn payload_reader(
    id: &str,
    values: usize,
) -> impl Fn(&UnitSession) -> godiva::core::Result<()> + Send + Sync + 'static {
    let id = id.to_string();
    move |s: &UnitSession| {
        let rec = s.new_record("rec")?;
        rec.set_str("id", &id)?;
        rec.set_f64("payload", vec![1.0; values])?;
        rec.commit()
    }
}

/// Events of a JSONL text, parsed; `skip_header` drops the first line.
fn parsed_lines(text: &str, skip_header: bool) -> Vec<JsonValue> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .skip(usize::from(skip_header))
        .map(|l| parse_json(l).expect("valid JSON line"))
        .collect()
}

#[test]
fn flight_recorder_dumps_postmortem_on_reader_panic() {
    let tag = format!("{}-{:?}", std::process::id(), std::thread::current().id());
    let trace_path = std::env::temp_dir().join(format!("godiva-mon-trace-{tag}.jsonl"));
    let dump_path = std::env::temp_dir().join(format!("godiva-mon-dump-{tag}.jsonl"));
    let recorder = Arc::new(FlightRecorder::with_capacity(512));
    {
        let sink = Arc::new(JsonlSink::create(&trace_path).unwrap());
        let db = payload_db(GboConfig {
            background_io: false,
            tracer: Tracer::new(sink),
            flight_recorder: Some(recorder.clone()),
            postmortem_path: Some(dump_path.clone()),
            ..Default::default()
        });
        for i in 0..3 {
            let name = format!("good{i}");
            db.add_unit(&name, payload_reader(&name, 64)).unwrap();
            db.wait_unit(&name).unwrap();
            db.finish_unit(&name).unwrap();
        }
        db.add_unit("bad", |_s: &UnitSession| -> godiva::core::Result<()> {
            panic!("injected reader panic")
        })
        .unwrap();
        assert!(db.wait_unit("bad").is_err(), "panicking unit must fail");
    } // db + sink dropped: trace file flushed

    let dump_text = std::fs::read_to_string(&dump_path).expect("post-mortem written");
    let trace_text = std::fs::read_to_string(&trace_path).unwrap();
    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(&dump_path);

    // Header: automatic dump with the panic reason and a correct count.
    let header = parse_json(dump_text.lines().next().unwrap()).unwrap();
    let meta = header.get("postmortem").expect("postmortem header");
    assert_eq!(
        meta.get("reason").and_then(|r| r.as_str()),
        Some("reader_panic")
    );
    let dump_events = parsed_lines(&dump_text, true);
    assert_eq!(
        meta.get("events").and_then(|e| e.as_u64()),
        Some(dump_events.len() as u64)
    );
    assert!(!dump_events.is_empty());

    // The dump is a contiguous run of the full trace restricted to the
    // events the recorder saw (the gbo category) — the lead-up to the
    // panic, ending at the read_failed that reported it.
    let gbo: Vec<JsonValue> = parsed_lines(&trace_text, false)
        .into_iter()
        .filter(|v| v.get("cat").and_then(|c| c.as_str()) == Some("gbo"))
        .collect();
    let window = dump_events.len();
    assert!(window <= gbo.len());
    let position = (0..=gbo.len() - window).find(|&s| gbo[s..s + window] == dump_events[..]);
    assert!(
        position.is_some(),
        "dump must be a contiguous run of the trace's gbo events"
    );
    // The tail shows the failure: the read_failed instant followed by
    // the closing read_unit span (ok=false), after which the dump fired.
    let last = dump_events.last().unwrap();
    assert_eq!(last.get("name").and_then(|n| n.as_str()), Some("read_unit"));
    assert_eq!(
        last.get("args").and_then(|a| a.get("ok")),
        Some(&JsonValue::Bool(false))
    );
    let tail_names: Vec<&str> = dump_events
        .iter()
        .rev()
        .take(3)
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    assert!(tail_names.contains(&"read_failed"), "{tail_names:?}");
    // The recorder itself still holds the events (dumping is not
    // destructive), accessible through the Gbo-facing API too.
    assert!(recorder.len() >= window);
}

#[test]
fn default_config_installs_a_flight_recorder() {
    let db = payload_db(GboConfig::default());
    assert!(db.flight_recorder().is_some());
    db.add_unit("u", payload_reader("u", 8)).unwrap();
    db.wait_unit("u").unwrap();
    db.finish_unit("u").unwrap();
    // Even with no user tracer, the teed recorder sees the lifecycle.
    let recorder = db.flight_recorder().unwrap();
    let names: Vec<String> = recorder
        .snapshot()
        .iter()
        .map(|e| e.name.to_string())
        .collect();
    assert!(names.contains(&"unit_added".to_string()), "{names:?}");
    assert!(names.contains(&"read_done".to_string()), "{names:?}");
    // Manual dumps work and report their reason.
    let path = db.dump_postmortem("operator_request").expect("dump path");
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(text.starts_with("{\"postmortem\":"));
    assert!(text.contains("operator_request"));
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

#[test]
fn metrics_server_exports_live_database_gauges() {
    let registry = Arc::new(MetricsRegistry::new());
    let server = MetricsServer::bind("127.0.0.1:0", registry.clone()).unwrap();
    let db = payload_db(GboConfig {
        metrics: Some(registry.clone()),
        ..Default::default()
    });
    db.add_unit("u1", payload_reader("u1", 1024)).unwrap();
    db.wait_unit("u1").unwrap();

    // Mid-run scrape: valid Prometheus text exposition with the live
    // occupancy gauge (u1 is pinned, so its bytes are still charged).
    let response = http_get(server.local_addr(), "/metrics");
    assert!(response.starts_with("HTTP/1.1 200 OK"));
    assert!(response.contains("text/plain; version=0.0.4"));
    assert!(response.contains("# TYPE gbo_mem_bytes gauge"));
    assert!(response.contains("# TYPE gbo_queue_depth gauge"));
    assert!(response.contains("# TYPE gbo_units_read counter"));
    let mem_line = response
        .lines()
        .find(|l| l.starts_with("gbo_mem_bytes "))
        .expect("gauge sample line");
    let value: u64 = mem_line.split_whitespace().nth(1).unwrap().parse().unwrap();
    assert!(value >= 8 * 1024, "pinned unit's bytes visible: {value}");

    // JSON endpoint agrees.
    let stats = http_get(server.local_addr(), "/stats");
    let body = stats.split("\r\n\r\n").nth(1).unwrap();
    let v = parse_json(body).expect("stats is valid JSON");
    assert_eq!(
        v.get("gbo.units_read")
            .and_then(|m| m.get("value")?.as_u64()),
        Some(1)
    );

    // The durability families a dashboard alerts on are present from
    // startup (zero-valued), not only after the first WAL/spill event.
    for family in [
        "gbo_wal_appends",
        "gbo_wal_bytes",
        "gbo_wal_fsyncs",
        "gbo_wal_replayed",
        "gbo_wal_truncated",
        "gbo_spill_writes",
        "gbo_spill_hits",
        "gbo_spill_misses",
        "gbo_spill_corrupt",
    ] {
        assert!(
            response.contains(&format!("# TYPE {family} counter")),
            "missing {family} family in /metrics"
        );
    }
    assert!(response.contains("# TYPE gbo_spill_bytes gauge"));

    // Liveness probe answers while the database is mid-run.
    let health = http_get(server.local_addr(), "/healthz");
    assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
    assert!(health.ends_with("ok\n"), "{health}");
    db.finish_unit("u1").unwrap();
}

#[test]
fn snapshotter_feeds_occupancy_timeline_into_analytics() {
    let tag = format!("{}-{:?}", std::process::id(), std::thread::current().id());
    let trace_path = std::env::temp_dir().join(format!("godiva-mon-snap-{tag}.jsonl"));
    let registry = Arc::new(MetricsRegistry::new());
    {
        let sink = Arc::new(JsonlSink::create(&trace_path).unwrap());
        let tracer = Tracer::new(sink);
        let snapshotter =
            Snapshotter::spawn(registry.clone(), tracer.clone(), Duration::from_millis(10));
        let db = payload_db(GboConfig {
            tracer,
            metrics: Some(registry.clone()),
            ..Default::default()
        });
        for i in 0..4 {
            let name = format!("u{i}");
            db.add_unit(&name, payload_reader(&name, 2048)).unwrap();
            db.wait_unit(&name).unwrap();
            db.finish_unit(&name).unwrap();
            std::thread::sleep(Duration::from_millis(12));
        }
        drop(snapshotter);
        drop(db);
    }
    let text = std::fs::read_to_string(&trace_path).unwrap();
    let _ = std::fs::remove_file(&trace_path);

    let report = analyze_trace(&text).expect("trace analyzes");
    // The snapshotter sampled gbo.mem_bytes while units were resident.
    assert!(
        report.occupancy.timeline.len() >= 2,
        "expected several occupancy samples, got {:?}",
        report.occupancy.timeline.len()
    );
    assert!(report.occupancy.peak_bytes >= 16 * 1024);
    // Attribution invariant: compute + wait-blocked == trace extent.
    assert_eq!(report.attribution_sum_us(), report.wall_us);
    report
        .check_attribution(report.wall_us.max(1), 0.05)
        .expect("self-consistent attribution");
    assert_eq!(report.units, 4);
    assert_eq!(report.prefetch.never, 0);
}

/// The exact key set tools downstream of `godiva-report --json` rely
/// on (the diff gate, CI's attribution check, dashboard importers).
/// Renaming or dropping a key is a breaking change — update the
/// baselines in `results/` and this list together.
#[test]
fn trace_report_json_schema_is_golden() {
    let tag = format!("{}-{:?}", std::process::id(), std::thread::current().id());
    let trace_path = std::env::temp_dir().join(format!("godiva-mon-schema-{tag}.jsonl"));
    {
        let sink = Arc::new(JsonlSink::create(&trace_path).unwrap());
        let db = payload_db(GboConfig {
            tracer: Tracer::new(sink),
            ..Default::default()
        });
        for i in 0..2 {
            let name = format!("u{i}");
            db.add_unit(&name, payload_reader(&name, 256)).unwrap();
            db.wait_unit(&name).unwrap();
            db.finish_unit(&name).unwrap();
        }
    }
    let text = std::fs::read_to_string(&trace_path).unwrap();
    let _ = std::fs::remove_file(&trace_path);

    let report = analyze_trace(&text).expect("trace analyzes");
    let v = parse_json(&report.to_json()).expect("report JSON parses");
    let JsonValue::Object(map) = &v else {
        panic!("report must be a JSON object");
    };
    let keys: Vec<&str> = map.keys().map(String::as_str).collect();
    assert_eq!(
        keys,
        [
            "attribution_sum_us",
            "churn",
            "compute_us",
            "events",
            "main_tid",
            "occupancy",
            "prefetch",
            "readers",
            "render_us",
            "spans",
            "spill",
            "start_us",
            "units",
            "wait_blocked_us",
            "wall_us",
        ],
        "godiva-report --json top-level schema changed"
    );

    let section_keys = |section: &str| -> Vec<String> {
        let JsonValue::Object(m) = v.get(section).unwrap() else {
            panic!("{section} must be an object");
        };
        m.keys().cloned().collect()
    };
    assert_eq!(
        section_keys("prefetch"),
        ["late", "late_wait_us", "never", "ready"]
    );
    assert_eq!(
        section_keys("churn"),
        [
            "evicted_bytes",
            "evictions",
            "re_read_us",
            "re_reads",
            "reads"
        ]
    );
    assert_eq!(
        section_keys("spill"),
        [
            "corrupt",
            "hits",
            "misses",
            "restore_us",
            "restored_bytes",
            "saved_us",
            "writes"
        ]
    );
    assert_eq!(section_keys("occupancy"), ["peak_bytes", "samples"]);
    let readers = v.get("readers").and_then(|r| r.as_array()).unwrap();
    assert!(!readers.is_empty(), "run had at least one reader");
    let JsonValue::Object(r0) = &readers[0] else {
        panic!("readers entries must be objects");
    };
    let reader_keys: Vec<&str> = r0.keys().map(String::as_str).collect();
    assert_eq!(reader_keys, ["busy_us", "reads", "tid"]);

    // A critical-path report spliced in by --critical-path keeps its
    // own contract: the per-resource partition plus the speedup table.
    let cp = godiva::obs::critical_path(&text).expect("critical path");
    let cpv = parse_json(&cp.to_json()).expect("critical-path JSON parses");
    let JsonValue::Object(cpm) = &cpv else {
        panic!("critical_path must be an object");
    };
    let cp_keys: Vec<&str> = cpm.keys().map(String::as_str).collect();
    assert_eq!(
        cp_keys,
        [
            "attribution_sum_us",
            "compute_us",
            "disk_us",
            "main_tid",
            "other_blocked_us",
            "queue_us",
            "reader_cpu_us",
            "speedups",
            "spill_restore_us",
            "waits_linked",
            "waits_total",
            "wal_fsync_us",
            "wall_us",
        ],
        "critical_path JSON schema changed"
    );
}

/// Degenerate traces must either error cleanly or produce a
/// self-consistent report — the analytics never panic on them.
#[test]
fn trace_analytics_edge_cases() {
    // Empty input is an error, not a zeroed report.
    assert!(analyze_trace("").is_err());
    assert!(analyze_trace("\n  \n").is_err());
    assert!(godiva::obs::critical_path("").is_err());

    // A single instant: zero wall, attribution still sums exactly.
    let one = r#"{"ts":10,"ph":"i","s":"t","cat":"gbo","name":"unit_added","pid":1,"tid":7,"args":{"unit":"a"}}"#;
    let r = analyze_trace(one).expect("single-event trace analyzes");
    assert_eq!((r.events, r.wall_us - r.start_us), (1, 0));
    assert_eq!(r.attribution_sum_us(), r.wall_us);

    // Disk-spans-only (O-mode backend: no database events at all):
    // main_tid falls back to the first event's tid and the whole
    // extent counts as blocked — there is no compute to attribute.
    let disk_only = [
        r#"{"ts":0,"dur":40,"ph":"X","cat":"disk","name":"read","pid":1,"tid":9,"args":{"file":"f","offset":0,"len":10}}"#,
        r#"{"ts":50,"dur":50,"ph":"X","cat":"disk","name":"read","pid":1,"tid":9,"args":{"file":"f","offset":10,"len":10}}"#,
    ]
    .join("\n");
    let r = analyze_trace(&disk_only).expect("disk-only trace analyzes");
    assert_eq!(r.main_tid, 9);
    assert_eq!(r.wall_us, 100);
    assert_eq!(r.wait_blocked_us, 90);
    assert_eq!(r.compute_us, 10);
    assert_eq!(r.attribution_sum_us(), r.wall_us);
    let cp = godiva::obs::critical_path(&disk_only).expect("critical path on disk-only");
    assert_eq!(cp.attribution_sum_us(), cp.wall_us);
}

/// End-to-end health engine lifecycle: injected read faults on a real
/// database drive the default `read_failures` SLO from ok → firing and
/// back to ok, observed simultaneously through `/healthz`, `/alerts`,
/// the JSONL alert log, and the alert instants in the trace (the same
/// fired/resolved pairing `trace_check` rule 6 enforces).
#[test]
fn health_engine_fires_and_resolves_alerts_end_to_end() {
    use godiva::obs::{AlertState, HealthConfig, HealthHandle, TraceSink as _};
    let tag = format!("{}-{:?}", std::process::id(), std::thread::current().id());
    let trace_path = std::env::temp_dir().join(format!("godiva-health-trace-{tag}.jsonl"));
    let log_path = std::env::temp_dir().join(format!("godiva-health-alerts-{tag}.jsonl"));
    let _ = std::fs::remove_file(&log_path);

    let registry = Arc::new(MetricsRegistry::new());
    let sink = Arc::new(JsonlSink::create(&trace_path).unwrap());
    let tracer = Tracer::new(sink.clone());
    // Tight budget plus failing readers — the workload of a run that is
    // genuinely unhealthy for a while.
    let db = payload_db(GboConfig {
        mem_limit: 256 << 10,
        metrics: Some(registry.clone()),
        tracer: tracer.clone(),
        ..Default::default()
    });
    // Manually-ticked handle: each tick() is one deterministic window
    // frame + SLO evaluation, so no sleeps are needed.
    let health = HealthHandle::new(
        registry.clone(),
        tracer.clone(),
        HealthConfig {
            alert_log: Some(log_path.clone()),
            ..Default::default()
        },
    );
    let server =
        MetricsServer::bind_with_health("127.0.0.1:0", registry.clone(), Some(health.clone()))
            .unwrap();
    let addr = server.local_addr();
    health.tick(); // baseline frame
    assert!(http_get(addr, "/healthz").starts_with("HTTP/1.1 200 OK"));

    // Inject faults: every read of these units fails (no retry policy).
    for i in 0..3 {
        let name = format!("bad{i}");
        db.add_unit(&name, |_s: &UnitSession| {
            Err(godiva::core::GodivaError::UnitError(
                "injected fault".into(),
            ))
        })
        .unwrap();
        assert!(db.wait_unit(&name).is_err());
    }
    assert!(db.stats().units_failed >= 3);

    // Two breaching ticks cross the default fire_ticks=2 hysteresis.
    health.tick();
    health.tick();
    assert_eq!(health.state("read_failures"), Some(AlertState::Firing));
    let readiness = http_get(addr, "/healthz");
    assert!(readiness.starts_with("HTTP/1.1 503"), "{readiness}");
    assert!(readiness.contains("read_failures"), "{readiness}");
    let alerts = http_get(addr, "/alerts");
    assert!(alerts.contains("\"rule\":\"read_failures\""), "{alerts}");
    assert!(alerts.contains("\"state\":\"firing\""), "{alerts}");
    let slo = http_get(addr, "/slo");
    assert!(slo.contains("\"rule\":\"read_failures\""), "{slo}");
    // The windowed families ride on /metrics while the engine runs.
    let metrics = http_get(addr, "/metrics");
    assert!(metrics.contains("window="), "{metrics}");

    // No further faults: once the failure leaves the 5-tick fast
    // window, clear_ticks=3 clean evaluations resolve the alert.
    for _ in 0..12 {
        health.tick();
    }
    assert_eq!(health.state("read_failures"), Some(AlertState::Ok));
    assert!(http_get(addr, "/healthz").starts_with("HTTP/1.1 200 OK"));
    let alerts = http_get(addr, "/alerts");
    assert!(alerts.contains("\"fired_total\":1"), "{alerts}");
    assert!(alerts.contains("\"resolved_total\":1"), "{alerts}");

    // The JSONL alert log round-trips: one fired line, one resolved
    // line, both for this rule and in that order.
    let log = std::fs::read_to_string(&log_path).unwrap();
    let events: Vec<String> = parsed_lines(&log, false)
        .iter()
        .map(|v| {
            assert_eq!(
                v.get("rule").and_then(|r| r.as_str()),
                Some("read_failures")
            );
            assert!(v.get("ts_us").and_then(|t| t.as_u64()).is_some());
            v.get("event").and_then(|e| e.as_str()).unwrap().to_string()
        })
        .collect();
    assert_eq!(events, vec!["warning", "fired", "resolved"], "{log}");

    // The trace carries the same lifecycle as instants — fired strictly
    // before resolved for the rule (trace_check's pairing rule).
    drop(db);
    sink.finish();
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    let health_events: Vec<(String, String)> = parsed_lines(&trace, false)
        .iter()
        .filter(|v| v.get("cat").and_then(|c| c.as_str()) == Some("health"))
        .map(|v| {
            (
                v.get("name").and_then(|n| n.as_str()).unwrap().to_string(),
                v.get("args")
                    .and_then(|a| a.get("rule")?.as_str())
                    .unwrap()
                    .to_string(),
            )
        })
        .collect();
    let fired = health_events
        .iter()
        .position(|(n, r)| n == "alert_fired" && r == "read_failures")
        .expect("alert_fired instant in trace");
    let resolved = health_events
        .iter()
        .position(|(n, r)| n == "alert_resolved" && r == "read_failures")
        .expect("alert_resolved instant in trace");
    assert!(fired < resolved, "fired must precede resolved");
    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(&log_path);
}
