//! Property tests: the GODIVA key index behaves exactly like a model
//! `BTreeMap` over arbitrary schemas, key tuples and field contents.

use godiva::core::{DeclaredSize, FieldData, FieldKind, Gbo, GboConfig, GodivaError, Key};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn key_string() -> impl Strategy<Value = String> {
    // Includes empty strings, unicode, and embedded separators — the
    // index must not confuse ("ab", "c") with ("a", "bc").
    prop_oneof![
        Just(String::new()),
        "[a-z]{1,8}",
        "[\\PC]{0,4}",
        Just("a|b".to_string()),
    ]
}

fn fresh_db(n_keys: usize) -> Gbo {
    let db = Gbo::with_config(GboConfig {
        mem_limit: 1 << 30,
        background_io: false,
        ..Default::default()
    });
    for k in 0..n_keys {
        db.define_field(&format!("k{k}"), FieldKind::Str, DeclaredSize::Unknown)
            .unwrap();
    }
    db.define_field("payload", FieldKind::F64, DeclaredSize::Unknown)
        .unwrap();
    db.define_record("rec", n_keys).unwrap();
    for k in 0..n_keys {
        db.insert_field("rec", &format!("k{k}"), true).unwrap();
    }
    db.insert_field("rec", "payload", false).unwrap();
    db.commit_record_type("rec").unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn index_matches_model(
        n_keys in 1usize..4,
        records in prop::collection::vec(
            (prop::collection::vec(key_string(), 3), prop::collection::vec(-1e9f64..1e9, 0..8)),
            0..24,
        ),
    ) {
        let db = fresh_db(n_keys);
        let mut model: BTreeMap<Vec<String>, Vec<f64>> = BTreeMap::new();
        for (keys, payload) in &records {
            let keys: Vec<String> = keys.iter().take(n_keys).cloned().collect();
            let rec = db.new_record("rec").unwrap();
            for (k, v) in keys.iter().enumerate() {
                rec.set_str(&format!("k{k}"), v.clone()).unwrap();
            }
            rec.set_f64("payload", payload.clone()).unwrap();
            match rec.commit() {
                Ok(()) => {
                    // Commit must succeed exactly when the key is fresh.
                    prop_assert!(!model.contains_key(&keys), "duplicate accepted: {keys:?}");
                    model.insert(keys, payload.clone());
                }
                Err(GodivaError::DuplicateKey(_)) => {
                    prop_assert!(model.contains_key(&keys), "fresh key rejected: {keys:?}");
                }
                Err(e) => prop_assert!(false, "unexpected error: {e}"),
            }
        }
        // Every model entry is queryable and returns the right payload.
        for (keys, payload) in &model {
            let kv: Vec<Key> = keys.iter().map(|s| Key::from(s.as_str())).collect();
            let buf = db.get_field_buffer("rec", "payload", &kv).unwrap();
            prop_assert_eq!(&*buf.f64s().unwrap(), payload.as_slice());
            let size = db.get_field_buffer_size("rec", "payload", &kv).unwrap();
            prop_assert_eq!(size, (payload.len() * 8) as u64);
        }
        let stats = db.stats();
        prop_assert_eq!(stats.records_committed as usize, model.len());
    }

    #[test]
    fn lookups_never_cross_keys(
        a in "[a-z]{1,6}",
        b in "[a-z]{1,6}",
    ) {
        prop_assume!(a != b);
        let db = fresh_db(2);
        let mk = |k0: &str, k1: &str, val: f64| {
            let rec = db.new_record("rec").unwrap();
            rec.set_str("k0", k0).unwrap();
            rec.set_str("k1", k1).unwrap();
            rec.set_f64("payload", vec![val]).unwrap();
            rec.commit().unwrap();
        };
        mk(&a, &b, 1.0);
        mk(&b, &a, 2.0);
        let get = |k0: &str, k1: &str| {
            db.get_field_buffer("rec", "payload", &[Key::from(k0), Key::from(k1)])
                .map(|buf| buf.f64s().unwrap()[0])
        };
        prop_assert_eq!(get(&a, &b).unwrap(), 1.0);
        prop_assert_eq!(get(&b, &a).unwrap(), 2.0);
        prop_assert!(get(&a, &a).is_err());
    }

    #[test]
    fn key_snapshot_protects_index(payloads in prop::collection::vec(-1e3f64..1e3, 1..16)) {
        // Non-key updates after commit must not disturb lookups.
        let db = fresh_db(1);
        let rec = db.new_record("rec").unwrap();
        rec.set_str("k0", "stable").unwrap();
        rec.set_f64("payload", vec![0.0]).unwrap();
        rec.commit().unwrap();
        for (i, chunk) in payloads.chunks(3).enumerate() {
            rec.set_f64("payload", chunk.to_vec()).unwrap();
            let buf = db
                .get_field_buffer("rec", "payload", &[Key::from("stable")])
                .unwrap();
            prop_assert_eq!(&*buf.f64s().unwrap(), chunk, "iteration {}", i);
        }
        // …and key mutation is refused outright.
        prop_assert!(rec.set_str("k0", "corrupted").is_err());
    }

    #[test]
    fn mem_accounting_tracks_every_set(sizes in prop::collection::vec(0usize..512, 1..20)) {
        let db = fresh_db(1);
        let mut expected = 0u64;
        for (i, n) in sizes.iter().enumerate() {
            let rec = db.new_record("rec").unwrap();
            rec.set_str("k0", format!("r{i}")).unwrap();
            expected += format!("r{i}").len() as u64;
            rec.set_f64("payload", vec![1.0; *n]).unwrap();
            expected += (*n as u64) * 8;
            rec.commit().unwrap();
        }
        prop_assert_eq!(db.mem_used(), expected);
    }

    #[test]
    fn field_data_kind_and_len_consistent(n in 0usize..100) {
        for kind in [FieldKind::F64, FieldKind::F32, FieldKind::I32, FieldKind::I64, FieldKind::Bytes, FieldKind::Str] {
            let bytes = (n * kind.elem_size()) as u64;
            let data = FieldData::zeroed(kind, bytes).unwrap();
            prop_assert_eq!(data.kind(), kind);
            prop_assert_eq!(data.byte_len(), bytes);
        }
    }
}
