//! Integration tests for the event-trace subsystem: the GBO's emitted
//! event stream must be well-formed and causally ordered — every
//! `read_start` matched by a `read_done` or `read_failed`, evictions
//! only after the unit was finished, retries producing balanced
//! attempt pairs — including when faults are injected underneath.

use godiva::core::{DeclaredSize, FieldKind, Gbo, GboConfig, RetryPolicy, UnitSession};
use godiva::genx::GenxConfig;
use godiva::obs::{parse_json, ArgValue, JsonlSink, MemorySink, TraceEvent, Tracer};
use godiva::platform::{FaultyFs, MemFs, Storage};
use godiva::sdf::ReadOptions;
use godiva::viz::{GodivaBackend, GodivaBackendOptions, SnapshotSource};
use std::sync::Arc;
use std::time::Duration;

/// The `unit` argument of an event, if present.
fn unit_arg(e: &TraceEvent) -> Option<&str> {
    e.args.iter().find_map(|(k, v)| match (k, v) {
        (&"unit", ArgValue::Str(s)) => Some(s.as_str()),
        _ => None,
    })
}

/// A database whose schema is ready for `payload_reader` units.
fn payload_db(config: GboConfig) -> Gbo {
    let db = Gbo::with_config(config);
    db.define_field("id", FieldKind::Str, DeclaredSize::Known(16))
        .unwrap();
    db.define_field("payload", FieldKind::F64, DeclaredSize::Unknown)
        .unwrap();
    db.define_record("rec", 1).unwrap();
    db.insert_field("rec", "id", true).unwrap();
    db.insert_field("rec", "payload", false).unwrap();
    db.commit_record_type("rec").unwrap();
    db
}

/// A read function creating one record with `values` f64s.
fn payload_reader(
    id: &str,
    values: usize,
) -> impl Fn(&UnitSession) -> godiva::core::Result<()> + Send + Sync + 'static {
    let id = id.to_string();
    move |s: &UnitSession| {
        let rec = s.new_record("rec")?;
        rec.set_str("id", &id)?;
        rec.set_f64("payload", vec![1.0; values])?;
        rec.commit()
    }
}

#[test]
fn read_starts_are_matched_and_evictions_follow_finish() {
    let sink = Arc::new(MemorySink::new());
    // Budget fits ~2 of the 8 KiB payloads, so the later units evict
    // the earlier (finished) ones.
    let db = payload_db(GboConfig {
        mem_limit: 20 << 10,
        background_io: true,
        tracer: Tracer::new(sink.clone()),
        ..Default::default()
    });
    for i in 0..5 {
        let name = format!("unit{i}");
        db.add_unit(&name, payload_reader(&name, 1024)).unwrap();
        db.wait_unit(&name).unwrap();
        db.finish_unit(&name).unwrap();
    }
    let stats = db.stats();
    assert!(stats.evictions > 0, "budget must have forced evictions");
    drop(db);

    let events = sink.snapshot();
    for i in 0..5 {
        let name = format!("unit{i}");
        let of_unit: Vec<&str> = events
            .iter()
            .filter(|e| unit_arg(e) == Some(name.as_str()))
            .map(|e| e.name.as_ref())
            .collect();
        // Causal order per unit: announced, read exactly once, finished;
        // an eviction (if any) comes only after the finish.
        let pos = |n: &str| of_unit.iter().position(|x| *x == n);
        let added = pos("unit_added").expect("unit_added");
        let start = pos("read_start").expect("read_start");
        let done = pos("read_done").expect("read_done");
        let finished = pos("unit_finished").expect("unit_finished");
        assert!(
            added < start && start < done && done < finished,
            "{of_unit:?}"
        );
        assert_eq!(of_unit.iter().filter(|n| **n == "read_start").count(), 1);
        assert!(!of_unit.contains(&"read_failed"));
        if let Some(evicted) = pos("unit_evicted") {
            assert!(evicted > finished, "eviction before finish: {of_unit:?}");
        }
    }
    assert!(
        events.iter().any(|e| e.name == "unit_evicted"),
        "evictions must be traced"
    );
}

#[test]
fn retried_reads_balance_under_transient_faults() {
    let mem = Arc::new(MemFs::new());
    let mut genx = GenxConfig::tiny();
    genx.snapshots = 2;
    godiva::genx::generate(mem.as_ref(), &genx).unwrap();
    let fs = Arc::new(FaultyFs::new(mem));
    fs.fail_first_k_reads_of("snap_0001", 2);

    let sink = Arc::new(MemorySink::new());
    let tracer = Tracer::new(sink.clone());
    fs.set_tracer(tracer.clone());
    let mut options = GodivaBackendOptions::batch(vec!["stress_avg".into()], true, 64 << 20);
    options.retry = RetryPolicy::new(4, Duration::from_millis(1), Duration::from_millis(10));
    options.tracer = tracer;
    let mut be = GodivaBackend::new(
        fs.clone() as Arc<dyn Storage>,
        genx.clone(),
        ReadOptions::new(),
        options,
    );
    be.begin_run(&[0, 1]).unwrap();
    for s in [0, 1] {
        be.load_pass(s, "stress_avg").unwrap();
        be.end_snapshot(s).unwrap();
    }
    let stats = be.gbo_stats().unwrap();
    assert!(
        stats.units_retried > 0,
        "transient fault must cause a retry"
    );
    drop(be);

    let events = sink.snapshot();
    let count = |n: &str| events.iter().filter(|e| e.name == n).count();
    // Every attempt opens with read_start and closes with read_done or
    // read_failed — even the ones the fault killed.
    assert_eq!(
        count("read_start"),
        count("read_done") + count("read_failed")
    );
    assert!(count("read_failed") > 0);
    assert!(count("read_retry") > 0);
    assert!(
        count("fault_injected") > 0,
        "FaultyFs must trace injections"
    );
    // The faulted unit ends in success: its last lifecycle event pair is
    // a read_done.
    let snap1: Vec<&str> = events
        .iter()
        .filter(|e| unit_arg(e).is_some_and(|u| u.contains("snap_0001")))
        .map(|e| e.name.as_ref())
        .collect();
    assert!(snap1.contains(&"read_failed") && snap1.contains(&"read_done"));
}

#[test]
fn jsonl_trace_roundtrips_through_parser() {
    let path =
        std::env::temp_dir().join(format!("godiva-trace-events-{}.jsonl", std::process::id()));
    {
        let sink = Arc::new(JsonlSink::create(&path).unwrap());
        let db = payload_db(GboConfig {
            tracer: Tracer::new(sink),
            ..Default::default()
        });
        db.add_unit("u1", payload_reader("u1", 64)).unwrap();
        db.wait_unit("u1").unwrap();
        db.finish_unit("u1").unwrap();
    } // db + sink dropped: file flushed

    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(!text.trim().is_empty(), "trace must not be empty");
    let mut opens = 0i64;
    for line in text.lines() {
        let v = parse_json(line).expect("every line is valid JSON");
        assert!(v.get("ts").and_then(|t| t.as_u64()).is_some());
        assert!(v.get("name").and_then(|n| n.as_str()).is_some());
        let ph = v.get("ph").and_then(|p| p.as_str()).unwrap();
        assert!(ph == "i" || ph == "X", "unexpected phase {ph}");
        match v.get("name").and_then(|n| n.as_str()).unwrap() {
            "read_start" => opens += 1,
            "read_done" | "read_failed" => opens -= 1,
            _ => {}
        }
    }
    assert_eq!(opens, 0, "read spans must balance");
}
