//! Property tests for the visualization layer: spec-file round-trips,
//! colour-map invariants, triangle-soup operations.

use godiva::platform::Work;
use godiva::viz::color::ColorScheme;
use godiva::viz::specfile::{format_camera, format_ops, parse_camera, parse_ops};
use godiva::viz::{Axis, Camera, ColorMap, GraphicsOp, TestSpec, TriangleSoup};
use proptest::prelude::*;

fn var_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,12}"
}

fn axis() -> impl Strategy<Value = Axis> {
    prop_oneof![Just(Axis::X), Just(Axis::Y), Just(Axis::Z)]
}

fn frac() -> impl Strategy<Value = f64> {
    // Values that survive the float→text→float round trip exactly.
    (0u32..=1000).prop_map(|n| n as f64 / 1000.0)
}

fn op() -> impl Strategy<Value = GraphicsOp> {
    prop_oneof![
        var_name().prop_map(|var| GraphicsOp::Surface { var }),
        (var_name(), frac()).prop_map(|(var, fraction)| GraphicsOp::Isosurface { var, fraction }),
        (var_name(), axis(), frac()).prop_map(|(var, axis, fraction)| GraphicsOp::Slice {
            var,
            axis,
            fraction
        }),
        (var_name(), axis(), frac()).prop_map(|(var, axis, fraction)| GraphicsOp::Clip {
            var,
            axis,
            fraction
        }),
        (var_name(), frac(), 1usize..64).prop_map(|(var, scale, stride)| GraphicsOp::Glyphs {
            var,
            scale,
            stride
        }),
        (var_name(), frac(), frac()).prop_map(|(var, lo, hi)| GraphicsOp::Threshold {
            var,
            lo,
            hi
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ops_file_roundtrip(
        name in "[a-z][a-z0-9_-]{0,16}",
        work_us in 0u64..1_000_000,
        ops in prop::collection::vec(op(), 1..10),
    ) {
        let spec = TestSpec {
            name,
            ops,
            work_per_op: Work::from_micros(work_us),
        };
        let text = format_ops(&spec);
        let back = parse_ops(&text).unwrap();
        prop_assert_eq!(back.name, spec.name);
        prop_assert_eq!(back.work_per_op, spec.work_per_op);
        prop_assert_eq!(back.ops, spec.ops);
    }

    #[test]
    fn camera_file_roundtrip(
        px in -100.0f64..100.0, py in -100.0f64..100.0, pz in -100.0f64..100.0,
        lx in -10.0f64..10.0, ly in -10.0f64..10.0, lz in -10.0f64..10.0,
        fov in 10.0f64..120.0,
    ) {
        let cam = Camera {
            position: [px, py, pz],
            look_at: [lx, ly, lz],
            up: [0.0, 0.0, 1.0],
            fov_y_deg: fov,
            near: 1e-3,
        };
        let back = parse_camera(&format_camera(&cam)).unwrap();
        prop_assert_eq!(back.position, cam.position);
        prop_assert_eq!(back.look_at, cam.look_at);
        prop_assert_eq!(back.fov_y_deg, cam.fov_y_deg);
    }

    #[test]
    fn colormaps_total_and_clamped(
        lo in -1e6f64..1e6,
        span in 1e-6f64..1e6,
        values in prop::collection::vec(prop::num::f64::ANY, 0..64),
    ) {
        for scheme in [ColorScheme::Rainbow, ColorScheme::Gray, ColorScheme::Heat] {
            let m = ColorMap::new(lo, lo + span, scheme);
            for &v in &values {
                let _ = m.map(v); // total: no panic on any input incl. NaN/inf
            }
            // Endpoints are the extreme colours of each scheme.
            let a = m.map(lo);
            let b = m.map(lo + span);
            prop_assert_eq!(m.map(lo - 1e9), a, "below range clamps to low end");
            prop_assert_eq!(m.map(lo + span + 1e9), b, "above range clamps to high end");
        }
    }

    #[test]
    fn gray_map_is_monotone(samples in prop::collection::vec(0.0f64..1.0, 2..32)) {
        let m = ColorMap::new(0.0, 1.0, ColorScheme::Gray);
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let greys: Vec<u8> = sorted.iter().map(|&v| m.map(v).0).collect();
        prop_assert!(greys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn soup_append_preserves_counts(
        n1 in 0usize..20,
        n2 in 0usize..20,
    ) {
        let mk = |n: usize| TriangleSoup {
            positions: vec![[0.0; 3]; n * 3],
            scalars: vec![1.0; n * 3],
            tris: (0..n).map(|t| [3 * t as u32, 3 * t as u32 + 1, 3 * t as u32 + 2]).collect(),
        };
        let mut a = mk(n1);
        let b = mk(n2);
        a.append(&b);
        prop_assert_eq!(a.tri_count(), n1 + n2);
        prop_assert_eq!(a.positions.len(), (n1 + n2) * 3);
        // All indices in range.
        for t in &a.tris {
            for &v in t {
                prop_assert!((v as usize) < a.positions.len());
            }
        }
    }

    #[test]
    fn dedup_is_idempotent(
        coords in prop::collection::vec(-10.0f64..10.0, 9..60),
    ) {
        let n = coords.len() / 9; // whole triangles
        let soup = TriangleSoup {
            positions: coords[..n * 9]
                .chunks_exact(3)
                .map(|c| [c[0], c[1], c[2]])
                .collect(),
            scalars: vec![0.0; n * 3],
            tris: (0..n).map(|t| [3 * t as u32, 3 * t as u32 + 1, 3 * t as u32 + 2]).collect(),
        };
        let once = soup.dedup(1e-9);
        let twice = once.dedup(1e-9);
        prop_assert_eq!(once.positions.len(), twice.positions.len());
        prop_assert_eq!(once.tris, twice.tris);
    }
}
