//! Property tests: mesh generation, partitioning and the contouring
//! filters maintain their geometric invariants over random parameters.

use godiva::mesh::{annulus_mesh, boundary_faces, box_tet_mesh, partition_mesh};
use godiva::viz::{isosurface, plane_slice, surface, Plane};
use proptest::prelude::*;
use std::collections::HashMap;

fn edge_counts(tris: &[[u32; 3]]) -> HashMap<(u32, u32), usize> {
    let mut edges = HashMap::new();
    for t in tris {
        for (a, b) in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
            *edges.entry((a.min(b), a.max(b))).or_default() += 1;
        }
    }
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn box_meshes_always_valid_and_exact_volume(
        nx in 1usize..5, ny in 1usize..5, nz in 1usize..5,
        lx in 0.1f64..10.0, ly in 0.1f64..10.0, lz in 0.1f64..10.0,
    ) {
        let m = box_tet_mesh(nx, ny, nz, lx, ly, lz);
        m.validate().unwrap();
        prop_assert_eq!(m.elem_count(), nx * ny * nz * 6);
        let expect = lx * ly * lz;
        prop_assert!((m.total_volume() - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn annulus_meshes_always_valid(
        nr in 1usize..4, nt in 3usize..16, nz in 1usize..4,
        r0 in 0.1f64..1.0, dr in 0.1f64..2.0, h in 0.1f64..5.0,
    ) {
        let m = annulus_mesh(nr, nt, nz, r0, r0 + dr, h);
        m.validate().unwrap();
        // Boundary is a closed 2-manifold.
        let faces = boundary_faces(&m);
        prop_assert!(edge_counts(&faces).values().all(|&c| c == 2));
    }

    #[test]
    fn partition_covers_exactly_and_conserves_volume(
        nx in 1usize..5, ny in 1usize..5, nz in 1usize..5,
        k in 1usize..9,
    ) {
        let m = box_tet_mesh(nx, ny, nz, 1.0, 1.0, 1.0);
        let blocks = partition_mesh(&m, k);
        prop_assert_eq!(blocks.len(), k);
        let mut seen = vec![false; m.elem_count()];
        let mut vol = 0.0;
        for b in &blocks {
            b.mesh.validate().unwrap();
            vol += b.mesh.total_volume();
            for &e in &b.global_elems {
                prop_assert!(!seen[e as usize]);
                seen[e as usize] = true;
            }
            // Local→global mapping is consistent.
            for (le, t) in b.mesh.tets.iter().enumerate() {
                let gt = m.tets[b.global_elems[le] as usize];
                for (i, &ln) in t.iter().enumerate() {
                    prop_assert_eq!(b.global_nodes[ln as usize], gt[i]);
                    let lp = b.mesh.points[ln as usize];
                    let gp = m.points[gt[i] as usize];
                    prop_assert_eq!(lp, gp);
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert!((vol - m.total_volume()).abs() < 1e-9);
    }

    #[test]
    fn interior_isosurfaces_are_closed(
        res in 3usize..7,
        iso in 0.15f64..0.45,
        cx in 0.4f64..0.6, cy in 0.4f64..0.6, cz in 0.4f64..0.6,
    ) {
        let m = box_tet_mesh(res, res, res, 1.0, 1.0, 1.0);
        let f: Vec<f64> = m
            .points
            .iter()
            .map(|p| ((p[0] - cx).powi(2) + (p[1] - cy).powi(2) + (p[2] - cz).powi(2)).sqrt())
            .collect();
        // Keep the sphere strictly interior.
        prop_assume!(iso < cx.min(1.0 - cx).min(cy.min(1.0 - cy)).min(cz.min(1.0 - cz)));
        let soup = isosurface(&m, &f, iso).unwrap().dedup(1e-9);
        if soup.tri_count() > 0 {
            prop_assert!(
                edge_counts(&soup.tris).values().all(|&c| c == 2),
                "open isosurface at iso {iso}"
            );
        }
    }

    #[test]
    fn slice_vertices_lie_on_the_plane(
        res in 2usize..6,
        frac in 0.05f64..0.95,
        nx in -1.0f64..1.0, ny in -1.0f64..1.0,
    ) {
        prop_assume!(nx.abs() + ny.abs() > 0.1);
        let m = box_tet_mesh(res, res, res, 1.0, 1.0, 1.0);
        let f: Vec<f64> = m.points.iter().map(|p| p[2]).collect();
        let plane = Plane::through([frac, frac, 0.0], [nx, ny, 0.3]);
        let soup = plane_slice(&m, &f, plane).unwrap();
        for p in &soup.positions {
            prop_assert!(plane.eval(*p).abs() < 1e-9, "off-plane point {p:?}");
        }
        // Colour scalars stay within the field's range.
        for &s in &soup.scalars {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&s));
        }
    }

    #[test]
    fn surface_scalars_subset_of_field(
        res in 1usize..5,
        values in prop::collection::vec(-1e3f64..1e3, 8..216),
    ) {
        let m = box_tet_mesh(res, res, res, 1.0, 1.0, 1.0);
        prop_assume!(values.len() >= m.node_count());
        let f = &values[..m.node_count()];
        let soup = surface(&m, f).unwrap();
        for &s in &soup.scalars {
            prop_assert!(f.contains(&s), "surface scalar {s} not a nodal value");
        }
    }

    #[test]
    fn interpolation_exact_for_linear_fields(
        a in -2.0f64..2.0, b in -2.0f64..2.0, c in -2.0f64..2.0, d in -2.0f64..2.0,
        px in 0.05f64..0.3, py in 0.05f64..0.3, pz in 0.05f64..0.3,
    ) {
        let m = godiva::mesh::tet::unit_tet();
        let f = |p: [f64; 3]| a * p[0] + b * p[1] + c * p[2] + d;
        let field: Vec<f64> = m.points.iter().map(|&p| f(p)).collect();
        let q = [px, py, pz]; // strictly inside the unit tet
        let v = m.interpolate_in_tet(0, q, &field).unwrap();
        prop_assert!((v - f(q)).abs() < 1e-9);
    }
}
