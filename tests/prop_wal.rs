//! Property test for crash recovery (DESIGN.md §5g): replaying **any**
//! byte-prefix of the write-ahead log yields prefix-consistent state.
//!
//! A deterministic inline-mode database runs an arbitrary browsing
//! sequence (visits, finishes, deletes) under a tight memory budget
//! with a spill tier, journaling everything. The log is then cut at an
//! arbitrary byte offset — simulating a torn tail after `kill -9` — and
//! recovery runs against the truncated copy. The invariants:
//!
//! 1. recovery never errors — a torn or corrupt tail truncates, it does
//!    not poison the database;
//! 2. the truncated log scans to an exact record-prefix of the full log
//!    (no phantom records, no lost committed ones before the cut);
//! 3. recovered units are a subset of the units the run ever added —
//!    no phantom units;
//! 4. a unit whose journaled spill frame survives intact on disk
//!    re-materializes **without its read function running** (the warm
//!    restart), and
//! 5. every unit's data reads back byte-identical after recovery, no
//!    matter where the log was cut (readers re-run where frames are
//!    gone — correctness never depends on the cut point).

use godiva::core::wal::{replay, scan_log};
use godiva::core::{DeclaredSize, FieldKind, Gbo, GboConfig, Key, SpillConfig, UnitSession};
use godiva::platform::{RealFs, Storage};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const UNITS: usize = 5;
/// f64 values per unit record — small enough to keep cases fast, large
/// enough that ~2.5 units breach the budget and force spills.
const PAYLOAD: usize = 256;

fn unit_name(i: usize) -> String {
    format!("u{i}")
}

fn payload(i: usize) -> Vec<f64> {
    (0..PAYLOAD).map(|j| (i * 100_000 + j) as f64).collect()
}

fn define_schema(db: &Gbo) {
    db.define_field("idx", FieldKind::I64, DeclaredSize::Known(8))
        .unwrap();
    db.define_field("data", FieldKind::F64, DeclaredSize::Unknown)
        .unwrap();
    db.define_record("blob", 1).unwrap();
    db.insert_field("blob", "idx", true).unwrap();
    db.insert_field("blob", "data", false).unwrap();
    db.commit_record_type("blob").unwrap();
}

/// A read function for unit `i` that counts its invocations.
fn reader(
    i: usize,
    calls: Arc<AtomicUsize>,
) -> impl Fn(&UnitSession) -> godiva::core::Result<()> + Send + Sync + 'static {
    move |s: &UnitSession| {
        calls.fetch_add(1, Ordering::SeqCst);
        let rec = s.new_record("blob")?;
        rec.set_i64("idx", vec![i as i64])?;
        rec.set_f64("data", payload(i))?;
        rec.commit()
    }
}

fn config(root: &Path) -> GboConfig {
    let fs = RealFs::new(root).unwrap();
    GboConfig {
        // ~2.5 units of payload (+ keys): visits evict and spill.
        mem_limit: (PAYLOAD * 8 * 5 / 2) as u64,
        background_io: false,
        spill: Some(SpillConfig {
            storage: Arc::new(fs) as Arc<dyn Storage>,
            dir: "spill".into(),
            budget: 1 << 20,
        }),
        wal_dir: Some(root.join("wal")),
        ..Default::default()
    }
}

fn fresh_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("godiva-prop-wal-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    root
}

/// Assert the unit's record reads back with the deterministic payload.
fn assert_data(db: &Gbo, i: usize) {
    let buf = db
        .get_field_buffer("blob", "data", &[Key::from(i as i64)])
        .unwrap();
    assert_eq!(*buf.f64s().unwrap(), payload(i), "unit {i} data differs");
}

/// One browsing op in the generated trace.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `read_unit` + `finish_unit` — makes the unit evictable.
    Visit(usize),
    /// `delete_unit` — drops records and invalidates the frame.
    Delete(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..UNITS).prop_map(Op::Visit),
        1 => (0..UNITS).prop_map(Op::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_log_prefix_recovers_consistently(
        ops in prop::collection::vec(op_strategy(), 4..14),
        cut_frac in 0.0f64..1.0,
    ) {
        let case_tag = format!("{:x}", {
            // Deterministic per-input tag so parallel proptest cases
            // never share directories.
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            format!("{ops:?}{cut_frac}").hash(&mut h);
            h.finish()
        });
        let root_a = fresh_root(&format!("a-{case_tag}"));
        let root_b = fresh_root(&format!("b-{case_tag}"));

        // --- the original run -----------------------------------------
        let mut call_counters: Vec<Arc<AtomicUsize>> = Vec::new();
        for _ in 0..UNITS {
            call_counters.push(Arc::new(AtomicUsize::new(0)));
        }
        {
            let db = Gbo::with_config(config(&root_a));
            define_schema(&db);
            for op in &ops {
                match *op {
                    Op::Visit(i) => {
                        db.read_unit(&unit_name(i), reader(i, call_counters[i].clone()))
                            .unwrap();
                        assert_data(&db, i);
                        db.finish_unit(&unit_name(i)).unwrap();
                    }
                    // Deleting a never-visited unit is a NotFound error;
                    // the trace does not care.
                    Op::Delete(i) => {
                        let _ = db.delete_unit(&unit_name(i));
                    }
                }
            }
        }

        // --- cut the log, copy the frames ------------------------------
        let full_log = std::fs::read(root_a.join("wal/wal.log")).unwrap();
        let cut = (full_log.len() as f64 * cut_frac) as usize;
        std::fs::create_dir_all(root_b.join("wal")).unwrap();
        std::fs::write(root_b.join("wal/wal.log"), &full_log[..cut]).unwrap();
        std::fs::create_dir_all(root_b.join("spill")).unwrap();
        if let Ok(entries) = std::fs::read_dir(root_a.join("spill")) {
            for e in entries.flatten() {
                std::fs::copy(e.path(), root_b.join("spill").join(e.file_name())).unwrap();
            }
        }

        // Invariant 2: the truncated log scans to an exact record-prefix
        // of the full log.
        let full_scan = scan_log(&root_a.join("wal/wal.log")).unwrap();
        let cut_scan = scan_log(&root_b.join("wal/wal.log")).unwrap();
        prop_assert!(cut_scan.valid_len <= cut as u64);
        prop_assert!(cut_scan.records.len() <= full_scan.records.len());
        for (a, b) in cut_scan.records.iter().zip(&full_scan.records) {
            prop_assert_eq!(a, b, "truncated log diverges from the full log");
        }

        // Units whose journaled frame survives byte-identical on disk:
        // their read functions must NOT run again after recovery.
        let rep = replay(&cut_scan);
        let mut warm: Vec<usize> = Vec::new();
        for i in 0..UNITS {
            let Some(ru) = rep.units.get(&unit_name(i)) else { continue };
            let Some((len, xxh)) = ru.spilled else { continue };
            let path = root_b.join("spill").join(format!("u{i}.gsp"));
            let Ok(frame) = std::fs::read(&path) else { continue };
            let tail = frame.len() >= 8 && {
                let t = u64::from_le_bytes(frame[frame.len() - 8..].try_into().unwrap());
                frame.len() as u64 == len && t == xxh
            };
            if tail {
                warm.push(i);
            }
        }

        // --- recovery (invariant 1: never errors) ----------------------
        let db = Gbo::open_recovering(config(&root_b)).unwrap();
        define_schema(&db);

        // Invariant 3: no phantom units.
        let known: Vec<String> = (0..UNITS).map(unit_name).collect();
        for name in db.unit_names() {
            prop_assert!(known.contains(&name), "phantom unit '{}' after recovery", name);
        }

        // Invariants 4 + 5: every unit reads back identical data; warm
        // units do it without their read function running.
        for i in 0..UNITS {
            let before = call_counters[i].load(Ordering::SeqCst);
            db.read_unit(&unit_name(i), reader(i, call_counters[i].clone())).unwrap();
            assert_data(&db, i);
            db.finish_unit(&unit_name(i)).unwrap();
            if warm.contains(&i) {
                prop_assert_eq!(
                    call_counters[i].load(Ordering::SeqCst), before,
                    "unit {}'s intact frame must restore without re-reading", i
                );
            }
        }
        drop(db);

        let _ = std::fs::remove_dir_all(&root_a);
        let _ = std::fs::remove_dir_all(&root_b);
    }
}
