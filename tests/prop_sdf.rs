//! Property tests: the SDF container round-trips arbitrary datasets and
//! detects arbitrary corruption.

use godiva::platform::{MemFs, Storage};
use godiva::sdf::{plain, Attr, DType, Encoding, SdfError, SdfFile, SdfWriter};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum AnyData {
    F64(Vec<f64>),
    F32(Vec<f32>),
    I32(Vec<i32>),
    I64(Vec<i64>),
    Bytes(Vec<u8>),
}

fn any_data() -> impl Strategy<Value = AnyData> {
    prop_oneof![
        prop::collection::vec(prop::num::f64::ANY, 0..200).prop_map(AnyData::F64),
        prop::collection::vec(prop::num::f32::ANY, 0..200).prop_map(AnyData::F32),
        prop::collection::vec(any::<i32>(), 0..200).prop_map(AnyData::I32),
        prop::collection::vec(any::<i64>(), 0..200).prop_map(AnyData::I64),
        prop::collection::vec(any::<u8>(), 0..400).prop_map(AnyData::Bytes),
    ]
}

fn dataset_name() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_./ -]{1,24}"
}

fn put(
    w: &mut SdfWriter<'_>,
    name: &str,
    data: &AnyData,
    attrs: Vec<Attr>,
) -> godiva::sdf::Result<()> {
    match data {
        AnyData::F64(v) => w.put_1d(name, v, attrs),
        AnyData::F32(v) => w.put_1d(name, v, attrs),
        AnyData::I32(v) => w.put_1d(name, v, attrs),
        AnyData::I64(v) => w.put_1d(name, v, attrs),
        AnyData::Bytes(v) => w.put_1d(name, v, attrs),
    }
}

fn bits_equal(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

fn check(file: &SdfFile, name: &str, data: &AnyData) -> Result<(), TestCaseError> {
    match data {
        AnyData::F64(v) => {
            let back: Vec<f64> = file.read(name).unwrap();
            prop_assert_eq!(back.len(), v.len());
            for (x, y) in back.iter().zip(v) {
                prop_assert!(bits_equal(*x, *y), "f64 bits differ");
            }
        }
        AnyData::F32(v) => {
            let back: Vec<f32> = file.read(name).unwrap();
            prop_assert_eq!(back.len(), v.len());
            for (x, y) in back.iter().zip(v) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        AnyData::I32(v) => prop_assert_eq!(&file.read::<i32>(name).unwrap(), v),
        AnyData::I64(v) => prop_assert_eq!(&file.read::<i64>(name).unwrap(), v),
        AnyData::Bytes(v) => prop_assert_eq!(&file.read::<u8>(name).unwrap(), v),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_arbitrary_datasets(
        datasets in prop::collection::btree_map(dataset_name(), any_data(), 0..12),
        shuffle in any::<bool>(),
        attr_text in "[a-z]{0,12}",
    ) {
        let fs = Arc::new(MemFs::new());
        let encoding = if shuffle { Encoding::Shuffle } else { Encoding::Raw };
        let mut w = SdfWriter::create(fs.as_ref(), "t.sdf").with_encoding(encoding);
        for (name, data) in &datasets {
            put(&mut w, name, data, vec![
                Attr::new("text", attr_text.as_str()),
                Attr::new("n", 42_i64),
                Attr::new("x", 0.5_f64),
            ]).unwrap();
        }
        w.finish().unwrap();

        let file = SdfFile::open(fs, "t.sdf").unwrap();
        prop_assert_eq!(file.datasets().len(), datasets.len());
        for (name, data) in &datasets {
            check(&file, name, data)?;
            let info = file.dataset(name).unwrap();
            prop_assert_eq!(info.attr("text"), Some(&godiva::sdf::AttrValue::Text(attr_text.clone())));
            prop_assert_eq!(info.encoding, encoding);
        }
    }

    #[test]
    fn any_single_byte_flip_in_payload_is_detected(
        values in prop::collection::vec(-1e6f64..1e6, 1..64),
        flip_fraction in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let fs = Arc::new(MemFs::new());
        let mut w = SdfWriter::create(fs.as_ref(), "t.sdf");
        w.put_1d("x", &values, vec![]).unwrap();
        w.finish().unwrap();

        // Flip one bit somewhere inside the payload region.
        let mut bytes = fs.read("t.sdf").unwrap();
        let payload_start = 24; // header
        let payload_len = values.len() * 8;
        let pos = payload_start + ((flip_fraction * (payload_len as f64 - 1.0)) as usize);
        bytes[pos] ^= 1 << bit;
        fs.write("t.sdf", &bytes).unwrap();

        let file = SdfFile::open(fs, "t.sdf").unwrap();
        let err = file.read::<f64>("x").unwrap_err();
        prop_assert!(
            matches!(err, SdfError::ChecksumMismatch { .. }),
            "got {err}"
        );
    }

    #[test]
    fn random_truncation_never_panics(
        values in prop::collection::vec(any::<i64>(), 0..64),
        keep_fraction in 0.0f64..1.0,
    ) {
        let fs = Arc::new(MemFs::new());
        let mut w = SdfWriter::create(fs.as_ref(), "t.sdf");
        w.put_1d("x", &values, vec![]).unwrap();
        w.finish().unwrap();
        let bytes = fs.read("t.sdf").unwrap();
        let keep = ((bytes.len() as f64) * keep_fraction) as usize;
        fs.write("t.sdf", &bytes[..keep]).unwrap();
        // Either a clean error, or (if the cut only removed nothing) success.
        if let Ok(file) = SdfFile::open(fs, "t.sdf") {
            prop_assert_eq!(keep, bytes.len());
            let _ = file.read::<i64>("x");
        }
    }

    #[test]
    fn hyperslab_equals_full_read_slice(
        values in prop::collection::vec(any::<i32>(), 1..256),
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let fs = Arc::new(MemFs::new());
        let mut w = SdfWriter::create(fs.as_ref(), "t.sdf");
        w.put_1d("x", &values, vec![]).unwrap();
        w.finish().unwrap();
        let file = SdfFile::open(fs, "t.sdf").unwrap();
        let n = values.len() as u64;
        let start = ((n - 1) as f64 * start_frac) as u64;
        let count = (((n - start) as f64) * len_frac) as u64;
        let slab: Vec<i32> = file.read_slab("x", start, count).unwrap();
        prop_assert_eq!(slab.as_slice(), &values[start as usize..(start + count) as usize]);
    }

    #[test]
    fn plain_binary_roundtrip(values in prop::collection::vec(prop::num::f64::ANY, 0..256)) {
        let fs = MemFs::new();
        plain::write_array(&fs, "a.bin", &values).unwrap();
        let back: Vec<f64> = plain::read_array(&fs, "a.bin").unwrap();
        prop_assert_eq!(back.len(), values.len());
        for (x, y) in back.iter().zip(&values) {
            prop_assert!(bits_equal(*x, *y));
        }
    }

    #[test]
    fn dtype_tags_are_stable(tag in 0u8..10) {
        // Decoding a tag either fails or round-trips; no panics.
        if let Ok(dt) = DType::from_tag(tag) {
            prop_assert_eq!(dt.tag(), tag);
        }
    }
}
