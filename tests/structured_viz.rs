//! Grid-type coverage (§4.1: Rocketeer handles "non-uniform,
//! structured, unstructured, and multiblock" grids): structured and
//! multiblock data flow through GODIVA and the full visualization
//! pipeline exactly like the unstructured GENx meshes.

use godiva::core::{DeclaredSize, FieldKind, Gbo, Key, UnitSession};
use godiva::mesh::{CurvilinearBlock3D, MultiBlock3D};
use godiva::viz::{surface, Camera, ColorMap, Framebuffer};

#[test]
fn curvilinear_block_renders() {
    let block = CurvilinearBlock3D::graded(5, 5, 5, [1.0, 1.0, 1.0], 2.5);
    let mesh = block.to_tet_mesh();
    let field = block.sample_node_field(|p| p[0] + p[1] + p[2]);
    let soup = surface(&mesh, &field).unwrap();
    assert!(soup.tri_count() > 0);
    let mut fb = Framebuffer::new(96, 96);
    let camera = Camera::framing([0.0; 3], [1.0; 3]);
    let cmap = ColorMap::fit(&field, Default::default());
    let drawn = godiva::viz::raster::rasterize(&mut fb, &camera, &cmap, &soup);
    assert!(drawn > 0);
    assert!(fb.covered_pixels() > 100);
}

#[test]
fn multiblock_through_godiva_database() {
    // Store a two-block structured domain in GODIVA (one record per
    // block, keyed by block id), then query it back and composite a
    // render — the whole multiblock flow.
    let mb = MultiBlock3D::two_box_example(0.5, [1.0, 1.0, 1.0], 4);
    let db = Gbo::new(64);

    let mb2 = mb.clone();
    db.add_unit("domain", move |s: &UnitSession| {
        s.define_field("block", FieldKind::I64, DeclaredSize::Known(8))?;
        s.define_field("points", FieldKind::F64, DeclaredSize::Unknown)?;
        s.define_field("conn", FieldKind::I32, DeclaredSize::Unknown)?;
        s.define_field("temp", FieldKind::F64, DeclaredSize::Unknown)?;
        s.define_record("sblock", 1)?;
        s.insert_field("sblock", "block", true)?;
        s.insert_field("sblock", "points", false)?;
        s.insert_field("sblock", "conn", false)?;
        s.insert_field("sblock", "temp", false)?;
        s.commit_record_type("sblock")?;
        for (b, cb) in mb2.blocks.iter().enumerate() {
            let mesh = cb.to_tet_mesh();
            let rec = s.new_record("sblock")?;
            rec.set_i64("block", vec![b as i64])?;
            rec.set_f64(
                "points",
                mesh.points.iter().flat_map(|p| p.iter().copied()).collect(),
            )?;
            rec.set_i32(
                "conn",
                mesh.tets
                    .iter()
                    .flat_map(|t| t.iter().map(|&n| n as i32))
                    .collect(),
            )?;
            rec.set_f64("temp", cb.sample_node_field(|p| 300.0 + 100.0 * p[0]))?;
            rec.commit()?;
        }
        Ok(())
    })
    .unwrap();

    let guard = db.wait_unit_guard("domain").unwrap();
    let mut fb = Framebuffer::new(96, 96);
    let camera = Camera::framing([0.0; 3], [1.0; 3]);
    let cmap = ColorMap::new(300.0, 400.0, Default::default());
    for b in 0..mb.blocks.len() {
        let keys = [Key::from(b as i64)];
        let points = db.get_field_buffer("sblock", "points", &keys).unwrap();
        let conn = db.get_field_buffer("sblock", "conn", &keys).unwrap();
        let temp = db.get_field_buffer("sblock", "temp", &keys).unwrap();
        let mesh = godiva::mesh::TetMesh {
            points: points
                .f64s()
                .unwrap()
                .chunks_exact(3)
                .map(|c| [c[0], c[1], c[2]])
                .collect(),
            tets: conn
                .i32s()
                .unwrap()
                .chunks_exact(4)
                .map(|t| [t[0] as u32, t[1] as u32, t[2] as u32, t[3] as u32])
                .collect(),
        };
        mesh.validate().unwrap();
        let soup = surface(&mesh, &temp.f64s().unwrap()).unwrap();
        godiva::viz::raster::rasterize(&mut fb, &camera, &cmap, &soup);
    }
    guard.finish();
    assert!(fb.covered_pixels() > 100, "both blocks rendered");
    assert_eq!(db.record_count(), 2);
}

#[test]
fn structured_2d_block_as_godiva_record_round_trips() {
    // The paper's own Table 1 object: a structured 2-D block stored and
    // queried through the database.
    use godiva::mesh::StructuredBlock2D;
    let block = StructuredBlock2D::uniform(20, 10, 2.0, 1.0);
    let db = Gbo::new(16);
    db.define_field("id", FieldKind::Str, DeclaredSize::Unknown)
        .unwrap();
    db.define_field("x coordinates", FieldKind::F64, DeclaredSize::Unknown)
        .unwrap();
    db.define_field("y coordinates", FieldKind::F64, DeclaredSize::Unknown)
        .unwrap();
    db.define_record("block2d", 1).unwrap();
    db.insert_field("block2d", "id", true).unwrap();
    db.insert_field("block2d", "x coordinates", false).unwrap();
    db.insert_field("block2d", "y coordinates", false).unwrap();
    db.commit_record_type("block2d").unwrap();
    let rec = db.new_record("block2d").unwrap();
    rec.set_str("id", "b0").unwrap();
    rec.set_f64("x coordinates", block.x.clone()).unwrap();
    rec.set_f64("y coordinates", block.y.clone()).unwrap();
    rec.commit().unwrap();

    let x = db
        .get_field_buffer("block2d", "x coordinates", &[Key::from("b0")])
        .unwrap();
    let restored = StructuredBlock2D {
        nx: 20,
        ny: 10,
        x: x.f64s().unwrap().to_vec(),
        y: db
            .get_field_buffer("block2d", "y coordinates", &[Key::from("b0")])
            .unwrap()
            .f64s()
            .unwrap()
            .to_vec(),
    };
    restored.validate().unwrap();
    assert_eq!(restored, block);
}
