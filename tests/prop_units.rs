//! Property tests: unit lifecycle, memory accounting and eviction under
//! randomized workloads — the §3.2/§3.3 machinery must keep its
//! invariants for any interleaving of adds, waits, finishes and deletes.

use godiva::core::{
    DeclaredSize, EvictionPolicy, FieldKind, Gbo, GboConfig, Key, UnitSession, UnitState,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// One step of a randomized single-threaded driver program.
#[derive(Debug, Clone)]
enum Op {
    Add(u8),
    Wait(u8),
    Finish(u8),
    Delete(u8),
    Query(u8),
    SetMem(u32),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8).prop_map(Op::Add),
        (0u8..8).prop_map(Op::Wait),
        (0u8..8).prop_map(Op::Finish),
        (0u8..8).prop_map(Op::Delete),
        (0u8..8).prop_map(Op::Query),
        (2_000u32..200_000).prop_map(Op::SetMem),
    ]
}

fn reader(bytes: usize) -> impl Fn(&UnitSession) -> godiva::core::Result<()> + Send + Sync {
    move |s: &UnitSession| {
        s.define_field("id", FieldKind::Str, DeclaredSize::Unknown)?;
        s.define_field("payload", FieldKind::F64, DeclaredSize::Unknown)?;
        s.define_record("rec", 1)?;
        s.insert_field("rec", "id", true)?;
        s.insert_field("rec", "payload", false)?;
        s.commit_record_type("rec")?;
        let r = s.new_record("rec")?;
        r.set_str("id", s.unit())?;
        r.set_f64("payload", vec![1.0; bytes / 8])?;
        r.commit()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unit_state_machine_never_wedges(
        ops in prop::collection::vec(op(), 1..60),
        policy in prop_oneof![Just(EvictionPolicy::Lru), Just(EvictionPolicy::Fifo)],
        unit_kb in 1usize..8,
    ) {
        // Single-threaded mode: every transition is deterministic and
        // synchronous, so we can model pins exactly.
        let db = Gbo::with_config(GboConfig {
            mem_limit: 20_000,
            background_io: false,
            eviction: policy,
            ..Default::default()
        });
        let bytes = unit_kb * 1024;
        let mut pins: HashMap<u8, usize> = HashMap::new();
        for op in &ops {
            match op {
                Op::Add(u) => {
                    let r = db.add_unit(&format!("u{u}"), reader(bytes));
                    // Double-add of an active unit is an error; add of a
                    // new/registered unit succeeds.
                    let _ = r;
                }
                Op::Wait(u) => {
                    let name = format!("u{u}");
                    match db.wait_unit(&name) {
                        Ok(()) => {
                            *pins.entry(*u).or_default() += 1;
                            prop_assert_eq!(db.unit_state(&name), Some(UnitState::Ready));
                        }
                        Err(e) => {
                            // Only legitimate failures: unknown unit, or
                            // nothing evictable for an oversized load.
                            let msg = e.to_string();
                            prop_assert!(
                                msg.contains("unknown unit") || msg.contains("out of memory") || msg.contains("read function"),
                                "unexpected wait failure: {msg}"
                            );
                        }
                    }
                }
                Op::Finish(u) => {
                    let name = format!("u{u}");
                    match db.finish_unit(&name) {
                        Ok(()) => {
                            let p = pins.entry(*u).or_default();
                            *p = p.saturating_sub(1);
                            if *p == 0 {
                                prop_assert_eq!(db.unit_state(&name), Some(UnitState::Finished));
                            }
                        }
                        Err(_) => {
                            // not loaded / unknown — fine.
                        }
                    }
                }
                Op::Delete(u) => {
                    if db.delete_unit(&format!("u{u}")).is_ok() {
                        pins.insert(*u, 0);
                    }
                }
                Op::Query(u) => {
                    let name = format!("u{u}");
                    let loaded = db
                        .unit_state(&name)
                        .map(|s| s.is_loaded())
                        .unwrap_or(false);
                    let hit = db
                        .get_field_buffer("rec", "payload", &[Key::from(name.as_str())])
                        .is_ok();
                    // Loaded units are always queryable; unloaded never.
                    if db.unit_state(&name).is_some() {
                        prop_assert_eq!(hit, loaded, "query vs state mismatch for {}", name);
                    }
                }
                Op::SetMem(m) => db.set_mem_space(*m as u64),
            }
            // Global invariant: pinned units are never evicted.
            for (u, &p) in &pins {
                if p > 0 {
                    prop_assert_eq!(
                        db.unit_state(&format!("u{u}")),
                        Some(UnitState::Ready),
                        "pinned unit u{} lost its data", u
                    );
                }
            }
        }
    }

    #[test]
    fn eviction_respects_budget_when_possible(
        n_units in 2usize..10,
        unit_kb in 1usize..6,
        budget_units in 1usize..4,
    ) {
        let bytes = unit_kb * 1024 + 16; // payload + key
        let db = Gbo::with_config(GboConfig {
            mem_limit: (bytes * budget_units) as u64,
            background_io: false,
            eviction: EvictionPolicy::Lru,
            ..Default::default()
        });
        for u in 0..n_units {
            let name = format!("u{u}");
            db.add_unit(&name, reader(unit_kb * 1024)).unwrap();
            db.wait_unit(&name).unwrap();
            db.finish_unit(&name).unwrap();
            prop_assert!(
                db.mem_used() <= db.mem_limit(),
                "{} used of {} after loading {} finished units",
                db.mem_used(), db.mem_limit(), u + 1
            );
        }
        // The most recently finished unit must still be resident.
        let last = format!("u{}", n_units - 1);
        prop_assert_eq!(db.unit_state(&last), Some(UnitState::Finished));
    }

    #[test]
    fn multi_worker_interleavings_keep_invariants(
        workers in 1usize..5,
        n_units in 2usize..10,
        unit_kb in 1usize..5,
        budget_units in 3usize..5,
    ) {
        // N reader workers prefetch concurrently while two application
        // threads wait/finish their halves of the unit list. Whatever
        // the interleaving, worker allocations must respect the budget
        // and no unit may be read twice.
        let bytes = unit_kb * 1024 + 64; // payload + key + slack
        let registry = std::sync::Arc::new(godiva::obs::MetricsRegistry::new());
        let db = Gbo::with_config(GboConfig {
            mem_limit: (bytes * budget_units) as u64,
            background_io: true,
            io_threads: workers,
            eviction: EvictionPolicy::Lru,
            metrics: Some(registry.clone()),
            ..Default::default()
        });
        for u in 0..n_units {
            db.add_unit(&format!("u{u}"), reader(unit_kb * 1024)).unwrap();
        }
        // With several workers, read-ahead units that are Ready but not
        // yet finished can legitimately fill the whole budget while an
        // earlier unit's worker is still blocked — the detector then
        // reports a (real) deadlock to the waiter. The property
        // tolerates that rare schedule; everything else must hold.
        let deadlocked = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for half in 0..2usize {
                let db = &db;
                let deadlocked = &deadlocked;
                s.spawn(move || {
                    for u in (half..n_units).step_by(2) {
                        let name = format!("u{u}");
                        match db.wait_unit(&name) {
                            Ok(()) => db.finish_unit(&name).unwrap(),
                            Err(godiva::core::GodivaError::Deadlock { .. }) => {
                                deadlocked.store(true, std::sync::atomic::Ordering::Relaxed);
                                return;
                            }
                            Err(e) => panic!("unexpected wait failure for {name}: {e}"),
                        }
                    }
                });
            }
        });
        // At quiescence the exported gauge must agree with the queue,
        // whatever mix of worker pops and failed/deadlocked waits
        // drained it.
        prop_assert_eq!(
            registry.gauge("gbo.queue_depth").get(),
            db.queue_len() as u64,
            "queue gauge out of sync with the queue"
        );
        let stats = db.stats();
        // Worker allocations block instead of over-running the budget.
        prop_assert!(
            stats.mem_peak <= db.mem_limit(),
            "peak {} exceeded budget {} with {} workers",
            stats.mem_peak, db.mem_limit(), workers
        );
        prop_assert_eq!(stats.over_budget_allocs, 0);
        if !deadlocked.load(std::sync::atomic::Ordering::Relaxed) {
            prop_assert_eq!(
                stats.units_read, n_units as u64,
                "every unit read exactly once (no double reads)"
            );
            prop_assert_eq!(stats.units_failed, 0);
            prop_assert!(db.mem_used() <= db.mem_limit());
            for u in 0..n_units {
                let name = format!("u{u}");
                let st = db.unit_state(&name).unwrap();
                prop_assert!(
                    matches!(st, UnitState::Finished | UnitState::Registered),
                    "unit {} ended in {:?}", name, st
                );
            }
        }
    }

    #[test]
    fn delete_always_returns_memory(
        loads in prop::collection::vec(1usize..8, 1..12),
    ) {
        let db = Gbo::with_config(GboConfig {
            mem_limit: 1 << 30,
            background_io: false,
            ..Default::default()
        });
        for (i, kb) in loads.iter().enumerate() {
            let name = format!("u{i}");
            db.add_unit(&name, reader(kb * 1024)).unwrap();
            db.wait_unit(&name).unwrap();
            db.delete_unit(&name).unwrap();
        }
        prop_assert_eq!(db.mem_used(), 0, "all deleted, nothing may remain charged");
    }
}
