//! Cross-crate integration: generate a synthetic GENx dataset, run the
//! Voyager driver under all three library builds on a simulated
//! platform, and check the paper's qualitative claims hold end to end.

use godiva::genx::GenxConfig;
use godiva::platform::Platform;
use godiva::viz::{run_voyager, Mode, TestSpec, VoyagerOptions};
use std::sync::{Arc, Mutex, MutexGuard};

/// Timing-sensitive tests must not run concurrently with each other —
/// they measure wall-clock overlap between threads, which other tests'
/// load would distort (especially on small CI hosts).
fn timing_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn small_genx() -> GenxConfig {
    let mut c = GenxConfig::paper_scaled();
    c.snapshots = 6;
    c.blocks = 24;
    c.files_per_snapshot = 4;
    c
}

fn options(platform: &Platform, genx: &GenxConfig, mode: Mode) -> VoyagerOptions {
    VoyagerOptions::new(
        platform.storage(),
        platform.cpu().clone(),
        genx.clone(),
        TestSpec::simple(),
        mode,
    )
}

#[test]
fn voyager_o_g_tg_agree_on_images_and_order_on_time() {
    let _serial = timing_lock();
    let genx = small_genx();
    let platform = Platform::engle(0.01);
    godiva::genx::generate(platform.storage().as_ref(), &genx).unwrap();

    let o = run_voyager(options(&platform, &genx, Mode::Original)).unwrap();
    platform.storage().reset_stats();
    let g = run_voyager(options(&platform, &genx, Mode::GodivaSingle)).unwrap();
    let g_bytes = platform.storage().stats().bytes_read;
    platform.storage().reset_stats();
    let tg = run_voyager(options(&platform, &genx, Mode::GodivaMulti)).unwrap();
    let tg_bytes = platform.storage().stats().bytes_read;

    // Identical pixels from all three builds.
    assert_eq!(o.image_checksums, g.image_checksums);
    assert_eq!(o.image_checksums, tg.image_checksums);

    // G and TG read the same (reduced) volume.
    assert_eq!(g_bytes, tg_bytes, "G and TG perform the same I/O volume");

    // The paper's headline ordering.
    assert!(
        g.visible_io < o.visible_io,
        "redundant-read elimination must cut visible I/O: {:?} vs {:?}",
        g.visible_io,
        o.visible_io
    );
    assert!(
        tg.visible_io < g.visible_io,
        "prefetching must hide I/O: {:?} vs {:?}",
        tg.visible_io,
        g.visible_io
    );
    assert!(tg.total < o.total, "TG must beat O end to end");
}

// Debug builds make the *real* (untokenized) render work 10–50× slower,
// drowning the modelled costs this test compares; only release-mode
// timings are representative of the simulated platforms.
#[cfg_attr(
    debug_assertions,
    ignore = "timing-shape comparison requires release-mode compute costs (run with --release)"
)]
#[test]
fn dual_cpu_hides_more_than_single_cpu() {
    let _serial = timing_lock();
    let genx = small_genx();
    let run = |platform: &Platform| {
        godiva::genx::generate(platform.storage().as_ref(), &genx).unwrap();
        let g = run_voyager(options(platform, &genx, Mode::GodivaSingle)).unwrap();
        let tg = run_voyager(options(platform, &genx, Mode::GodivaMulti)).unwrap();
        // fraction of I/O hidden, the paper's §4.2 formula
        (g.total.as_secs_f64() - tg.total.as_secs_f64()) / g.visible_io.as_secs_f64()
    };
    let engle = run(&Platform::engle(0.02));
    let turing = run(&Platform::turing(0.02));
    assert!(
        turing > engle,
        "a second CPU must hide more I/O (engle {engle:.2} vs turing {turing:.2})"
    );
    assert!(turing > 0.5, "turing should hide most I/O: {turing:.2}");
}

#[test]
fn deadlock_detection_surfaces_through_the_stack() {
    use godiva::core::GodivaError;
    use godiva::sdf::ReadOptions;
    use godiva::viz::{GodivaBackend, GodivaBackendOptions, SnapshotSource};

    let genx = small_genx();
    let platform = Platform::instant(2);
    godiva::genx::generate(platform.storage().as_ref(), &genx).unwrap();

    // A budget that fits roughly one snapshot, and an "application bug":
    // snapshots never finished/deleted.
    let mut be = GodivaBackend::new(
        platform.storage(),
        genx.clone(),
        ReadOptions::new(),
        GodivaBackendOptions::batch(vec!["stress_avg".into()], true, 600_000),
    );
    be.begin_run(&[0, 1, 2]).unwrap();
    be.load_pass(0, "stress_avg").unwrap();
    // Intentionally no end_snapshot(0): unit 0 stays pinned.
    let err = be.load_pass(1, "stress_avg").unwrap_err();
    let msg = err.to_string();
    assert!(
        matches!(
            err,
            godiva::viz::VizError::Godiva(GodivaError::Deadlock { .. })
        ),
        "expected deadlock, got: {msg}"
    );
}

#[test]
fn images_match_between_granularities() {
    let genx = small_genx();
    let platform = Platform::instant(2);
    godiva::genx::generate(platform.storage().as_ref(), &genx).unwrap();
    let mut snapshot_units = options(&platform, &genx, Mode::GodivaMulti);
    snapshot_units.granularity = godiva::viz::Granularity::Snapshot;
    let a = run_voyager(snapshot_units).unwrap();
    let mut file_units = options(&platform, &genx, Mode::GodivaMulti);
    file_units.granularity = godiva::viz::Granularity::File;
    let b = run_voyager(file_units).unwrap();
    assert_eq!(a.image_checksums, b.image_checksums);
}

#[test]
fn memory_budget_respected_during_batch_run() {
    let genx = small_genx();
    let platform = Platform::instant(2);
    godiva::genx::generate(platform.storage().as_ref(), &genx).unwrap();
    let mut opts = options(&platform, &genx, Mode::GodivaMulti);
    opts.mem_limit = 3 << 20; // a few snapshots' worth
    let report = run_voyager(opts).unwrap();
    let stats = report.gbo_stats.expect("gbo stats");
    assert!(
        stats.mem_peak <= 3 << 20,
        "peak {} exceeded the budget",
        stats.mem_peak
    );
    assert_eq!(stats.deadlocks_detected, 0);
}

#[test]
fn four_worker_render_matches_single_worker() {
    // The executor knob must not change what gets rendered: the same
    // run with 1 and 4 reader workers produces bit-identical images,
    // reads every unit in the background, and stays inside the budget.
    let genx = small_genx();
    let platform = Platform::instant(4);
    godiva::genx::generate(platform.storage().as_ref(), &genx).unwrap();

    let run = |io_threads: usize| {
        let mut opts = options(&platform, &genx, Mode::GodivaMulti);
        opts.io_threads = io_threads;
        opts.mem_limit = 8 << 20;
        run_voyager(opts).unwrap()
    };
    let one = run(1);
    let four = run(4);

    assert_eq!(one.image_checksums, four.image_checksums);
    assert_eq!(one.images, four.images);
    for (label, report) in [("1 worker", &one), ("4 workers", &four)] {
        let stats = report.gbo_stats.as_ref().expect("gbo stats");
        assert_eq!(
            stats.blocking_reads, 0,
            "{label}: all reads must happen on the executor"
        );
        assert_eq!(stats.background_reads, genx.snapshots as u64, "{label}");
        assert_eq!(stats.units_failed, 0, "{label}");
        assert_eq!(stats.deadlocks_detected, 0, "{label}");
        assert!(
            stats.mem_peak <= 8 << 20,
            "{label}: peak {} exceeded the budget",
            stats.mem_peak
        );
    }
}

#[test]
fn all_three_tests_run_on_all_platforms() {
    let genx = small_genx();
    for platform in [Platform::instant(1), Platform::instant(2)] {
        godiva::genx::generate(platform.storage().as_ref(), &genx).unwrap();
        for spec in TestSpec::all() {
            for mode in [Mode::Original, Mode::GodivaSingle, Mode::GodivaMulti] {
                let mut opts = VoyagerOptions::new(
                    platform.storage(),
                    platform.cpu().clone(),
                    genx.clone(),
                    spec.clone(),
                    mode,
                );
                opts.decode_work_per_kib = 0;
                opts.spec.work_per_op = godiva::platform::Work::ZERO;
                let report = run_voyager(opts).unwrap();
                assert_eq!(report.images, genx.snapshots);
            }
        }
    }
}

#[test]
fn frames_can_be_written_and_reread() {
    use godiva::platform::{MemFs, Storage};
    let genx = small_genx();
    let platform = Platform::instant(2);
    godiva::genx::generate(platform.storage().as_ref(), &genx).unwrap();
    let out = Arc::new(MemFs::new());
    let mut opts = options(&platform, &genx, Mode::GodivaMulti);
    opts.images_out = Some((out.clone() as Arc<dyn Storage>, "movie".into()));
    let report = run_voyager(opts).unwrap();
    let frames = out.list("movie/");
    assert_eq!(frames.len(), report.images);
    for f in frames {
        let (w, h, data) = godiva::viz::ppm::read_ppm(out.as_ref(), &f).unwrap();
        assert_eq!((w, h), (192, 144));
        assert!(data.iter().any(|&b| b != 0), "{f} should not be all black");
    }
}
