#![warn(missing_docs)]

//! # GODIVA
//!
//! Facade crate for the GODIVA workspace: a reproduction of
//! *"GODIVA: Lightweight Data Management for Scientific Visualization
//! Applications"* (ICDE 2004).
//!
//! The sub-crates are re-exported here so that examples, tests, and
//! downstream users can depend on a single crate:
//!
//! - [`core`] — the GODIVA in-memory buffer database (the paper's
//!   contribution): field/record schemas, key-indexed records, processing
//!   units, background-prefetching I/O thread, memory-bounded caching.
//! - [`sdf`] — a self-describing scientific file format (HDF4-like
//!   substrate).
//! - [`mesh`] — structured and unstructured tetrahedral mesh structures.
//! - [`genx`] — a synthetic rocket-simulation snapshot generator.
//! - [`viz`] — a Rocketeer/Voyager-like visualization pipeline.
//! - [`platform`] — simulated disk + CPU platform models used by the
//!   benchmark harness.
//! - [`obs`] — observability substrate: structured event tracing
//!   (JSONL / Chrome `trace_event` sinks) and lock-free metrics.

pub use godiva_core as core;
pub use godiva_genx as genx;
pub use godiva_mesh as mesh;
pub use godiva_obs as obs;
pub use godiva_platform as platform;
pub use godiva_sdf as sdf;
pub use godiva_viz as viz;
