//! Offline shim for the `criterion` crate: enough API to compile and run
//! this workspace's benches. Benchmarks execute and report a mean
//! wall-clock time per iteration; there is no warm-up tuning, outlier
//! analysis, or HTML report.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` resolves like upstream.
pub use std::hint::black_box;

/// Declared throughput of a benchmark, echoed in its report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identify a case by function name and parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identify a case by its parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean duration of one iteration, filled in by [`Bencher::iter`].
    mean: Duration,
    iters_timed: u64,
}

impl Bencher {
    /// Run `f` repeatedly and record its mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call to fault in lazy state.
        black_box(f());
        // Size the batch so one sample is neither trivially short nor
        // unbounded: aim for ~1ms batches, capped by sample count.
        let probe = Instant::now();
        black_box(f());
        let per_iter = probe.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000);
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += start.elapsed();
            iters += batch as u64;
        }
        self.mean = total / iters.max(1) as u32;
        self.iters_timed = iters;
    }
}

fn report(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let per = b.mean;
    let rate = throughput.map(|t| {
        let secs = per.as_secs_f64().max(1e-12);
        match t {
            Throughput::Bytes(n) => format!(", {:.1} MiB/s", n as f64 / secs / (1 << 20) as f64),
            Throughput::Elements(n) => format!(", {:.1} elem/s", n as f64 / secs),
        }
    });
    println!(
        "bench {id:<48} {:>12.3} µs/iter ({} iters{})",
        per.as_secs_f64() * 1e6,
        b.iters_timed,
        rate.unwrap_or_default()
    );
}

/// Top-level benchmark driver (shim for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
            iters_timed: 0,
        };
        f(&mut b);
        report(id, &b, None);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            mean: Duration::ZERO,
            iters_timed: 0,
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b, self.throughput);
        self
    }

    /// Run one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions (both upstream syntaxes).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut ran = 0u32;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_with_throughput_and_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(8));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
