//! Offline shim for the `parking_lot` crate: the API subset used by this
//! workspace, implemented over `std::sync`.
//!
//! Differences from `std` that callers rely on and this shim preserves
//! from the real `parking_lot`:
//!
//! - **No poisoning.** A panic while a lock is held does not make later
//!   `lock()`/`read()`/`write()` calls fail; the poison flag is stripped
//!   with [`std::sync::PoisonError::into_inner`].
//! - **`Condvar` borrows the guard** (`wait(&mut guard)`) instead of
//!   consuming and returning it.
//! - **Mapped read guards**: [`RwLockReadGuard::try_map`] projects a read
//!   guard to a component of the protected value.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Instant;

/// A mutual exclusion primitive (no poisoning).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait*` can temporarily take the inner guard
    // by value (std's condvar API consumes the guard).
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.0.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        let g = guard.inner.take().expect("guard present");
        let (g, result) = self
            .0
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock (no poisoning).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<'a, T: ?Sized> RwLockReadGuard<'a, T> {
    /// Project the guard to a component of the protected value, keeping
    /// the read lock held. Returns the original guard if `f` declines.
    pub fn try_map<U: ?Sized>(
        s: Self,
        f: impl FnOnce(&T) -> Option<&U>,
    ) -> Result<MappedRwLockReadGuard<'a, U>, Self> {
        let ptr: *const U = match f(&s.0) {
            Some(u) => u,
            None => return Err(s),
        };
        // SAFETY: `ptr` points into the lock-protected value, whose
        // address is stable (it lives inside the `RwLock`, not the
        // guard). Boxing the guard keeps the read lock held — and the
        // pointee alive — for the mapped guard's whole lifetime.
        Ok(MappedRwLockReadGuard {
            ptr,
            _guard: Box::new(s.0),
        })
    }
}

trait Erased {}
impl<T: ?Sized> Erased for T {}

/// A read guard projected to a component of the protected value.
pub struct MappedRwLockReadGuard<'a, U: ?Sized> {
    ptr: *const U,
    _guard: Box<dyn Erased + 'a>,
}

// SAFETY: semantically this is a `&U` plus a held read lock; both are
// Send/Sync whenever `U: Sync` (matching the real parking_lot bounds).
unsafe impl<U: ?Sized + Sync> Send for MappedRwLockReadGuard<'_, U> {}
unsafe impl<U: ?Sized + Sync> Sync for MappedRwLockReadGuard<'_, U> {}

impl<U: ?Sized> Deref for MappedRwLockReadGuard<'_, U> {
    type Target = U;
    fn deref(&self) -> &U {
        // SAFETY: see `try_map` — the pointee outlives the boxed guard.
        unsafe { &*self.ptr }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Mutex::new(0);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_try_map_projects() {
        let l = RwLock::new((1u32, vec![2.0f64, 3.0]));
        let mapped = RwLockReadGuard::try_map(l.read(), |v| Some(v.1.as_slice())).ok();
        assert_eq!(&*mapped.unwrap(), &[2.0, 3.0]);
        assert!(RwLockReadGuard::try_map(l.read(), |_| None::<&u32>).is_err());
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::panic::catch_unwind(move || {
            let _g = m2.lock();
            panic!("boom");
        });
        assert_eq!(*m.lock(), 0);
    }
}
