//! Offline shim for the `crossbeam` crate: only `channel::{unbounded,
//! Sender, Receiver}`, implemented over `std::sync::mpsc`.

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a value; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives; fails once all senders are gone
        /// and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Receive without blocking, if a value is ready.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0.try_recv().map_err(|_| RecvError)
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(41).unwrap());
            tx.send(1).unwrap();
            let sum: i32 = (0..2).map(|_| rx.recv().unwrap()).sum();
            assert_eq!(sum, 42);
            drop(tx);
            // Channel still drains after the last sender is dropped.
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
