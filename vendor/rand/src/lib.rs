//! Offline shim for the `rand` crate: `rngs::StdRng`, `Rng::gen` /
//! `gen_range`, and `SeedableRng::seed_from_u64`, backed by SplitMix64.
//!
//! The stream is deterministic per seed (which is all the workspace
//! relies on — `godiva-genx` seeds per snapshot/variable for
//! reproducible synthetic data); it makes no statistical-quality or
//! cross-version stability claims beyond that.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an [`RngCore`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing sampling interface.
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end.saturating_sub(range.start).max(1);
        range.start + self.next_u64() % span
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types (subset of `rand::rngs`).
pub mod rngs {
    /// The default RNG: SplitMix64 (not the upstream ChaCha12).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..8 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_floats() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
