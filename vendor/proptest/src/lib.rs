//! Offline shim for the `proptest` crate.
//!
//! Implements the API subset this workspace's property tests use:
//! the [`proptest!`] / [`prop_oneof!`] / `prop_assert*!` / [`prop_assume!`]
//! macros, the [`strategy::Strategy`] trait with `prop_map`, range /
//! tuple / `Just` / char-class-pattern strategies, `any::<T>()`,
//! `prop::collection::{vec, btree_map}`, `prop::num::{f32,f64}::ANY`,
//! and `ProptestConfig::with_cases`.
//!
//! Cases are generated from a deterministic per-test seed (derived from
//! the test's module path and name), so runs are reproducible. Failing
//! inputs are **not shrunk**; the failure message reports the case
//! number instead.

pub mod test_runner {
    //! Test configuration, case errors, and the deterministic RNG.

    /// Per-`proptest!` configuration (shim for `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    impl Config {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property was violated (`prop_assert*!`).
        Fail(String),
        /// The case was rejected by `prop_assume!`; not a failure.
        Reject,
    }

    impl TestCaseError {
        /// Construct a failure with the given message.
        pub fn fail(message: String) -> Self {
            TestCaseError::Fail(message)
        }
    }

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG whose stream is a pure function of `seed`.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a hash of a string — seeds each test deterministically.
    pub fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators this workspace uses.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every generated value through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }
    }

    /// Always produce a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Weighted choice among strategies of one value type
    /// (the expansion of [`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Uniform choice among `arms`.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            Union::new_weighted(arms.into_iter().map(|a| (1, a)).collect())
        }

        /// Choice among `arms` proportional to their weights.
        pub fn new_weighted(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (weight, arm) in &self.arms {
                if pick < *weight as u64 {
                    return arm.sample(rng);
                }
                pick -= *weight as u64;
            }
            self.arms.last().expect("non-empty").1.sample(rng)
        }
    }

    /// Box a strategy as a `prop_oneof!` arm (aids type inference).
    pub fn union_arm<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + rng.below(span.saturating_add(1)) as i128) as $t
                }
            }
        )+};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )+};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            crate::pattern::sample(self, rng)
        }
    }
}

mod pattern {
    //! Generator for the char-class regex patterns used as string
    //! strategies, e.g. `"[a-z][a-z0-9_-]{0,16}"` or `"[\\PC]{0,4}"`.
    //!
    //! Supported grammar: a sequence of elements, each a literal char or
    //! a `[...]` class (char ranges, literal chars, the `\PC`
    //! any-non-control escape), optionally followed by `{n}` or `{m,n}`.

    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum ClassItem {
        Range(char, char),
        Literal(char),
        /// `\PC`: any char not in Unicode category C (control et al.).
        NotControl,
    }

    #[derive(Debug, Clone)]
    struct Element {
        items: Vec<ClassItem>,
        min: u32,
        max: u32,
    }

    /// Printable sample pool for `\PC` — ASCII plus multi-byte chars, so
    /// index-vs-byte-offset confusions in the code under test surface.
    const NOT_CONTROL_POOL: &[char] = &[
        'a', 'z', 'A', 'Z', '0', '9', '_', '-', '.', '/', ' ', '|', '~', '!', '#', 'é', 'ß', 'Ω',
        'λ', 'Ж', '中', '한', '√', '∞', '🦀',
    ];

    fn parse(pattern: &str) -> Vec<Element> {
        let mut chars = pattern.chars().peekable();
        let mut elements = Vec::new();
        while let Some(c) = chars.next() {
            let items = match c {
                '[' => {
                    let mut items = Vec::new();
                    loop {
                        let item = match chars.next() {
                            None => panic!("unterminated class in pattern {pattern:?}"),
                            Some(']') => break,
                            Some('\\') => match chars.next() {
                                Some('P') => {
                                    let category = chars.next();
                                    assert_eq!(
                                        category,
                                        Some('C'),
                                        "only \\PC is supported (pattern {pattern:?})"
                                    );
                                    ClassItem::NotControl
                                }
                                Some(escaped) => ClassItem::Literal(escaped),
                                None => panic!("dangling escape in pattern {pattern:?}"),
                            },
                            Some(lo) => {
                                if chars.peek() == Some(&'-') {
                                    // `-` is a range only with a following
                                    // char that isn't the closing bracket.
                                    let mut ahead = chars.clone();
                                    ahead.next();
                                    match ahead.peek() {
                                        Some(&hi) if hi != ']' => {
                                            chars.next();
                                            chars.next();
                                            ClassItem::Range(lo, hi)
                                        }
                                        _ => ClassItem::Literal(lo),
                                    }
                                } else {
                                    ClassItem::Literal(lo)
                                }
                            }
                        };
                        items.push(item);
                    }
                    items
                }
                literal => vec![ClassItem::Literal(literal)],
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("repeat min"),
                        n.trim().parse().expect("repeat max"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            elements.push(Element { items, min, max });
        }
        elements
    }

    fn sample_item(item: &ClassItem, rng: &mut TestRng) -> char {
        match item {
            ClassItem::Literal(c) => *c,
            ClassItem::Range(lo, hi) => {
                let (lo, hi) = (*lo as u32, *hi as u32);
                assert!(lo <= hi, "inverted char range");
                char::from_u32(lo + rng.below((hi - lo + 1) as u64) as u32).unwrap_or(*match item {
                    ClassItem::Range(lo, _) => lo,
                    _ => unreachable!(),
                })
            }
            ClassItem::NotControl => {
                NOT_CONTROL_POOL[rng.below(NOT_CONTROL_POOL.len() as u64) as usize]
            }
        }
    }

    pub fn sample(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for element in parse(pattern) {
            let count = element.min + rng.below((element.max - element.min + 1) as u64) as u32;
            for _ in 0..count {
                let item = &element.items[rng.below(element.items.len() as u64) as usize];
                out.push(sample_item(item, rng));
            }
        }
        out
    }
}

pub mod arbitrary {
    //! `any::<T>()` — type-directed strategies from random bits.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_from_bits {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    arbitrary_from_bits!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn sample(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Strategy producing arbitrary values of `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_map`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;

    /// Inclusive-lower, exclusive-upper bound on a collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            let span = self.hi_exclusive.saturating_sub(self.lo).max(1);
            self.lo + rng.below(span as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi_exclusive: exact + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            // Duplicate keys collapse, which keeps the length within the
            // requested range (it is a lower-is-fine bound upstream too).
            let n = self.size.sample(rng);
            (0..n)
                .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                .collect()
        }
    }

    /// Maps with `size`-many entries drawn from `key` and `value`.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }
}

pub mod num {
    //! Numeric "any bit pattern" strategies.

    /// `f64` strategies.
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for [`ANY`].
        #[derive(Debug, Clone, Copy)]
        pub struct AnyF64;

        impl Strategy for AnyF64 {
            type Value = f64;
            fn sample(&self, rng: &mut TestRng) -> f64 {
                f64::from_bits(rng.next_u64())
            }
        }

        /// Any `f64` bit pattern, including NaN and infinities.
        pub const ANY: AnyF64 = AnyF64;
    }

    /// `f32` strategies.
    pub mod f32 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for [`ANY`].
        #[derive(Debug, Clone, Copy)]
        pub struct AnyF32;

        impl Strategy for AnyF32 {
            type Value = f32;
            fn sample(&self, rng: &mut TestRng) -> f32 {
                f32::from_bits(rng.next_u64() as u32)
            }
        }

        /// Any `f32` bit pattern, including NaN and infinities.
        pub const ANY: AnyF32 = AnyF32;
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let seed = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::new(
                    seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(message)) => {
                        panic!("property {} failed at case {case}: {message}", stringify!($name));
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Choose uniformly (or by `weight => strategy` arms) among strategies
/// producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::union_arm($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_arm($strategy)),+
        ])
    };
}

/// Assert a condition inside a property; on failure the case is
/// reported (not panicked mid-body, so cleanup still runs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left == *right,
                "assertion failed: `{:?}` != `{:?}`", left, right
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left == *right,
                "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)+)
            ),
        }
    };
}

/// Assert two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left != *right,
                "assertion failed: `{:?}` == `{:?}`", left, right
            ),
        }
    };
}

/// Discard the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot,
        Line(f64),
        Tag(String),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3u8..9, b in -5i32..5, x in 0.25f64..0.75, n in (0u32..=4)) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!(n <= 4);
        }

        #[test]
        fn collections_and_tuples(
            v in prop::collection::vec((0u8..4, 0.0f64..1.0), 2..6),
            m in prop::collection::btree_map("[a-z]{1,4}", any::<i64>(), 0..5),
            exact in prop::collection::vec(Just(7u8), 3),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(m.len() < 5);
            prop_assert_eq!(exact, vec![7, 7, 7]);
        }

        #[test]
        fn oneof_and_map_cover_arms(shapes in prop::collection::vec(
            prop_oneof![
                Just(Shape::Dot),
                (0.0f64..2.0).prop_map(Shape::Line),
                "[a-z][a-z0-9_-]{0,6}".prop_map(Shape::Tag),
            ],
            1..20,
        )) {
            for s in &shapes {
                if let Shape::Tag(t) = s {
                    prop_assert!(!t.is_empty() && t.len() <= 14);
                    prop_assert!(t.chars().next().unwrap().is_ascii_lowercase());
                }
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0, "only even cases survive the assume");
        }
    }

    #[test]
    fn pattern_not_control_generates_printable() {
        let mut rng = crate::test_runner::TestRng::new(11);
        for _ in 0..200 {
            let s = crate::pattern::sample("[\\PC]{0,4}", &mut rng);
            assert!(s.chars().count() <= 4);
            assert!(!s.chars().any(|c| c.is_control()), "control char in {s:?}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::new(99);
        let mut b = crate::test_runner::TestRng::new(99);
        let strat = prop::collection::vec(0u64..1000, 0..8);
        use crate::strategy::Strategy;
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }
}
