//! Interactive-mode exploration — §3.2's other usage pattern.
//!
//! An interactive tool *"may not be able to add units in advance since
//! it does not know what the user sitting in front of the monitor will
//! request next, and may simply use the explicit readUnit interface to
//! perform foreground blocking I/O. However, an interactive tool perhaps
//! will not delete units voluntarily, hoping that the user revisits some
//! data that are still in the database. It is more likely for such a
//! tool to mark a processed unit "finished" using finishUnit instead."*
//!
//! This example replays a scripted user session over a synthetic
//! dataset: the user steps forward, flips back and forth between two
//! time-steps to compare them (the locality §1 describes), and jumps to
//! a reference frame. Every request is timed so the cache effect is
//! visible in the output.
//!
//! Run with: `cargo run --release --example interactive_explorer`

use godiva::genx::GenxConfig;
use godiva::platform::{DiskModel, SimFs, Storage};
use godiva::sdf::ReadOptions;
use godiva::viz::{GodivaBackend, GodivaBackendOptions, SnapshotSource};
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut genx = GenxConfig::paper_scaled();
    genx.snapshots = 10;
    genx.blocks = 24;
    genx.files_per_snapshot = 4;
    let storage: Arc<dyn Storage> =
        Arc::new(SimFs::new(DiskModel::ide_7200rpm().scaled(0.05)).with_free_writes());
    godiva::genx::generate(storage.as_ref(), &genx)?;

    // Interactive configuration: single-thread reads, units are
    // *finished* (kept cached) rather than deleted, 64 MB budget.
    let mut backend = GodivaBackend::new(
        storage,
        genx.clone(),
        ReadOptions::new(),
        GodivaBackendOptions::interactive(vec!["stress_avg".to_string()], 64 << 20),
    );
    let all: Vec<usize> = (0..genx.snapshots).collect();
    backend.begin_run(&all)?;

    // The scripted user session.
    let session: Vec<(usize, &str)> = vec![
        (0, "open the first snapshot"),
        (1, "step forward"),
        (2, "step forward"),
        (1, "flip back to compare"),
        (2, "…and forth"),
        (1, "…and back again"),
        (7, "jump ahead"),
        (0, "return to the reference frame"),
        (7, "back to the interesting one"),
    ];

    println!("request                              snapshot  response");
    println!("--------------------------------------------------------");
    for (snap, what) in session {
        let t = Instant::now();
        let data = backend.load_pass(snap, "stress_avg")?;
        let ms = t.elapsed().as_secs_f64() * 1000.0;
        let kind = if ms < 1.0 { "cache hit" } else { "disk read" };
        println!(
            "{what:<36} {snap:>8}  {ms:>7.2} ms  ({kind}, {} blocks)",
            data.len()
        );
        backend.end_snapshot(snap)?; // finishUnit — keep it cached
    }

    let stats = backend.gbo_stats().expect("stats");
    let hit_rate = match stats.hit_rate() {
        Some(r) => format!("{:.0}% hit rate", r * 100.0),
        None => "hit rate n/a".to_string(),
    };
    println!(
        "\nsession summary: {} blocking reads, {} cache hits ({hit_rate}), \
         {:.2} MB resident",
        stats.blocking_reads,
        stats.cache_hits,
        stats.mem_used as f64 / (1024.0 * 1024.0),
    );
    Ok(())
}
