//! Parallel batch visualization across nodes — §3.3's deployment model:
//!
//! *"Each processor has its own database, which manages its local data,
//! and there is no need for any communication between the GBO objects on
//! different processors."* Voyager "partitions its workload between
//! processors by assigning different processors different snapshots to
//! process".
//!
//! This example runs four Voyager "processes" (threads, each with its
//! own simulated dual-CPU node, its own storage, and its own GODIVA
//! database) over a round-robin partition of the snapshots, then merges
//! the per-node reports — the shape of the paper's parallel experiment.
//!
//! Run with: `cargo run --release --example parallel_nodes`

use godiva::genx::GenxConfig;
use godiva::platform::Platform;
use godiva::viz::{run_voyager, Mode, TestSpec, VoyagerOptions};

const NODES: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut genx = GenxConfig::paper_scaled();
    genx.snapshots = 16;
    genx.blocks = 24;
    genx.files_per_snapshot = 4;

    println!(
        "spawning {NODES} Voyager processes, {} snapshots total…",
        genx.snapshots
    );
    let handles: Vec<_> = (0..NODES)
        .map(|node| {
            let genx = genx.clone();
            std::thread::spawn(move || {
                // One dual-CPU node with locally staged input files.
                let platform = Platform::turing(0.02);
                godiva::genx::generate(platform.storage().as_ref(), &genx).expect("stage dataset");
                let mut opts = VoyagerOptions::new(
                    platform.storage(),
                    platform.cpu().clone(),
                    genx.clone(),
                    TestSpec::simple(),
                    Mode::GodivaMulti,
                );
                opts.snapshots = (0..genx.snapshots).filter(|s| s % NODES == node).collect();
                let report = run_voyager(opts).expect("voyager");
                (node, report)
            })
        })
        .collect();

    let mut worst = 0.0f64;
    let mut images = 0;
    for h in handles {
        let (node, report) = h.join().expect("node thread");
        println!(
            "node {node}: {} frames, total {:.3}s (visible I/O {:.3}s, computation {:.3}s)",
            report.images,
            report.total.as_secs_f64(),
            report.visible_io.as_secs_f64(),
            report.computation.as_secs_f64(),
        );
        worst = worst.max(report.total.as_secs_f64());
        images += report.images;
    }
    println!(
        "\nparallel job done: {images} frames, completion time {worst:.3}s \
         (no inter-node communication — each node had its own GBO)"
    );
    Ok(())
}
