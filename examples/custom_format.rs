//! File-format independence — the design point §3 stresses:
//!
//! *"Because reading the input files and interpreting their contents are
//! done through developer-provided functions, this approach imposes no
//! requirements on file formats whatsoever. If visualization tool
//! developers decide to use GODIVA, they do not have to change how input
//! files are written, and can switch to another input file format just
//! by supplying a different read function."*
//!
//! This example stores the *same* time-series in three formats — SDF
//! (the HDF-like container), plain binary arrays, and a homegrown ASCII
//! format — and processes all three through one GODIVA database with
//! three different read functions. The processing code never changes.
//!
//! Run with: `cargo run --example custom_format`

use godiva::core::{DeclaredSize, FieldKind, Gbo, GodivaError, Key, UnitSession};
use godiva::platform::{MemFs, Storage};
use godiva::sdf::{plain, SdfWriter};
use std::sync::Arc;

const N: usize = 64;

fn series(step: usize) -> Vec<f64> {
    (0..N)
        .map(|i| (i as f64 * 0.1 + step as f64).sin())
        .collect()
}

/// Shared schema: one record per (format, step), keyed by unit name.
fn define_schema(s: &UnitSession) -> Result<(), GodivaError> {
    s.define_field("unit", FieldKind::Str, DeclaredSize::Unknown)?;
    s.define_field("signal", FieldKind::F64, DeclaredSize::Unknown)?;
    s.define_record("series", 1)?;
    s.insert_field("series", "unit", true)?;
    s.insert_field("series", "signal", false)?;
    s.commit_record_type("series")
}

fn store(s: &UnitSession, signal: Vec<f64>) -> Result<(), GodivaError> {
    define_schema(s)?;
    let rec = s.new_record("series")?;
    rec.set_str("unit", s.unit())?;
    rec.set_f64("signal", signal)?;
    rec.commit()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fs = Arc::new(MemFs::new());

    // --- write the same data in three different formats -----------------
    let mut w = SdfWriter::create(fs.as_ref(), "data/step0.sdf");
    w.put_1d("signal", &series(0), vec![])?;
    w.finish()?;

    plain::write_array(fs.as_ref(), "data/step1.bin", &series(1))?;

    let ascii: String = series(2).iter().map(|v| format!("{v}\n")).collect();
    fs.write("data/step2.txt", ascii.as_bytes())?;

    // --- one database, three read functions -----------------------------
    let db = Gbo::new(64);

    let fs_sdf = Arc::clone(&fs);
    db.add_unit("data/step0.sdf", move |s: &UnitSession| {
        let file = godiva::sdf::SdfFile::open(fs_sdf.clone() as Arc<dyn Storage>, s.unit())
            .map_err(|e| GodivaError::UnitError(e.to_string()))?;
        let signal: Vec<f64> = file
            .read("signal")
            .map_err(|e| GodivaError::UnitError(e.to_string()))?;
        store(s, signal)
    })?;

    let fs_bin = Arc::clone(&fs);
    db.add_unit("data/step1.bin", move |s: &UnitSession| {
        let signal: Vec<f64> = plain::read_array(fs_bin.as_ref(), s.unit())
            .map_err(|e| GodivaError::UnitError(e.to_string()))?;
        store(s, signal)
    })?;

    let fs_txt = Arc::clone(&fs);
    db.add_unit("data/step2.txt", move |s: &UnitSession| {
        let text = fs_txt
            .read(s.unit())
            .map_err(|e| GodivaError::UnitError(e.to_string()))?;
        let signal: Vec<f64> = String::from_utf8(text)
            .map_err(|e| GodivaError::UnitError(e.to_string()))?
            .lines()
            .map(|l| l.trim().parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|e| GodivaError::UnitError(e.to_string()))?;
        store(s, signal)
    })?;

    // --- format-agnostic processing code ---------------------------------
    for (step, unit) in ["data/step0.sdf", "data/step1.bin", "data/step2.txt"]
        .iter()
        .enumerate()
    {
        db.wait_unit(unit)?;
        let buf = db.get_field_buffer("series", "signal", &[Key::from(*unit)])?;
        let values = buf.f64s()?;
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let expect = series(step);
        assert_eq!(&*values, expect.as_slice(), "data identical across formats");
        println!(
            "{unit:<18} {} samples, mean {mean:+.4}  (read via its own read function)",
            values.len()
        );
        db.delete_unit(unit)?;
    }
    println!("\nsame processing code consumed SDF, plain binary and ASCII inputs.");
    Ok(())
}
