//! Apollo/Houston — an interactive client-server session (§4.1's third
//! Rocketeer tool: "an interactive tool with parallel processing in a
//! client-server mode").
//!
//! A [`HoustonServer`] runs worker threads, each owning a GODIVA
//! database over a partition of the mesh blocks; this "Apollo" client
//! sends render requests — switching variables, views and snapshots the
//! way a user would — and saves the composited images. Because workers
//! keep finished units cached, revisiting a snapshot is served from
//! memory.
//!
//! Run with: `cargo run --release --example apollo_session`

use godiva::genx::GenxConfig;
use godiva::platform::{DiskModel, RealFs, SimFs, Storage};
use godiva::viz::ppm::write_ppm;
use godiva::viz::{Axis, GraphicsOp, HoustonServer, RenderRequest};
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut genx = GenxConfig::paper_scaled();
    genx.snapshots = 8;
    genx.blocks = 24;
    genx.files_per_snapshot = 4;
    let storage: Arc<dyn Storage> =
        Arc::new(SimFs::new(DiskModel::cluster_scsi().scaled(0.02)).with_free_writes());
    godiva::genx::generate(storage.as_ref(), &genx)?;

    let server = HoustonServer::start(
        storage,
        genx.clone(),
        vec!["stress_avg".into(), "velocity".into(), "stress_xx".into()],
        3, // three worker databases, round-robin block partition
        64 << 20,
    )?;
    println!(
        "Houston up with {} workers; starting Apollo session\n",
        server.workers()
    );

    let session: Vec<(&str, RenderRequest)> = vec![
        (
            "surface of average stress, t=0",
            RenderRequest {
                snapshot: 0,
                ops: vec![GraphicsOp::Surface {
                    var: "stress_avg".into(),
                }],
                width: 256,
                height: 192,
            },
        ),
        (
            "velocity isosurface, t=3",
            RenderRequest {
                snapshot: 3,
                ops: vec![GraphicsOp::Isosurface {
                    var: "velocity".into(),
                    fraction: 0.5,
                }],
                width: 256,
                height: 192,
            },
        ),
        (
            "cut plane through sxx, t=3",
            RenderRequest {
                snapshot: 3,
                ops: vec![GraphicsOp::Clip {
                    var: "stress_xx".into(),
                    axis: Axis::X,
                    fraction: 0.5,
                }],
                width: 256,
                height: 192,
            },
        ),
        (
            "back to the first view (cached)",
            RenderRequest {
                snapshot: 0,
                ops: vec![GraphicsOp::Surface {
                    var: "stress_avg".into(),
                }],
                width: 256,
                height: 192,
            },
        ),
    ];

    let out = RealFs::new("target/apollo_session")?;
    for (i, (what, request)) in session.into_iter().enumerate() {
        let t = Instant::now();
        let fb = server.render(request)?;
        let ms = t.elapsed().as_secs_f64() * 1000.0;
        let path = format!("view_{i}.ppm");
        write_ppm(&out, &path, &fb)?;
        println!(
            "{what:<38} {ms:>8.2} ms  ({} px covered) -> target/apollo_session/{path}",
            fb.covered_pixels()
        );
    }
    server.shutdown();
    println!("\nsession over; workers joined cleanly.");
    Ok(())
}
