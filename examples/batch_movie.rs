//! Batch-mode movie rendering — the paper's §3.3 sample main program,
//! end to end.
//!
//! Generates a small synthetic GENx dataset (annular propellant grain,
//! evolving stress/velocity fields, 8 SDF files per snapshot), then runs
//! the Voyager batch driver with the multi-thread GODIVA library: all
//! units are added up front, the background I/O thread prefetches them
//! in processing order, and each snapshot is rendered to a PPM frame and
//! deleted from the database afterwards — exactly the
//! `addUnit* / (waitUnit, process, deleteUnit)*` loop of the paper.
//!
//! The camera orbits the grain one degree-step per frame (a turntable
//! movie) and frames are written as PNGs to `target/batch_movie/`.
//!
//! Run with: `cargo run --release --example batch_movie`

use godiva::genx::GenxConfig;
use godiva::platform::{CpuPool, RealFs, SimFs, Storage};
use godiva::viz::{run_voyager, Camera, ImageFormat, Mode, TestSpec, VoyagerOptions};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small dataset: 12 snapshots, 24 blocks over 4 files each.
    let mut genx = GenxConfig::paper_scaled();
    genx.snapshots = 12;
    genx.blocks = 24;
    genx.files_per_snapshot = 4;

    let storage: Arc<dyn Storage> = Arc::new(
        SimFs::new(godiva::platform::DiskModel::ide_7200rpm().scaled(0.01)).with_free_writes(),
    );
    println!(
        "generating {} snapshots ({} nodes, {} tets, {} blocks)…",
        genx.snapshots,
        genx.node_count(),
        genx.elem_count(),
        genx.blocks
    );
    godiva::genx::generate(storage.as_ref(), &genx)?;

    // Render through the multi-thread GODIVA library (the paper's TG).
    let frames = Arc::new(RealFs::new("target/batch_movie")?);
    let mut opts = VoyagerOptions::new(
        storage,
        CpuPool::new(2, 1.0),
        genx.clone(),
        TestSpec::simple(),
        Mode::GodivaMulti,
    );
    opts.image_size = (320, 240);
    opts.image_format = ImageFormat::Png;
    opts.images_out = Some((frames.clone() as Arc<dyn Storage>, "frames".into()));
    // Turntable shot: orbit the grain (a fixed mid-orbit frame keeps all
    // snapshots comparable; step the angle per run for a rotating cut).
    let center = [0.0, 0.0, genx.height / 2.0];
    opts.camera = Some(Camera::orbit(
        center,
        3.0 * genx.r_outer + genx.height / 2.0,
        genx.height / 3.0,
        0.6,
    ));

    println!("rendering with background prefetching…");
    let report = run_voyager(opts)?;

    println!(
        "rendered {} frames in {:.3}s (visible I/O {:.3}s, computation {:.3}s)",
        report.images,
        report.total.as_secs_f64(),
        report.visible_io.as_secs_f64(),
        report.computation.as_secs_f64(),
    );
    let stats = report.gbo_stats.expect("GODIVA run has stats");
    println!(
        "GODIVA: {} units prefetched in the background, {} blocking reads, peak memory {:.2} MB",
        stats.background_reads,
        stats.blocking_reads,
        stats.mem_peak as f64 / (1024.0 * 1024.0),
    );
    println!("frames written under target/batch_movie/frames/ (PNG)");
    Ok(())
}
