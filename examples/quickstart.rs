//! Quickstart: the paper's Table 1 / Figure 2 walkthrough.
//!
//! Builds the "fluid" record type of Table 1 (a structured 2-D mesh
//! block with string keys and double arrays), creates the exact record
//! instance of Figure 2 (a 100 × 100 block: 808-byte coordinate buffers,
//! 80 000-byte element variables), commits it, and answers the paper's
//! example query: *"give me the address of the pressure data buffer of
//! the block with ID block_0003 from the time-step with ID 0.000075"*.
//!
//! Run with: `cargo run --example quickstart`

use godiva::core::{DeclaredSize, FieldKind, Gbo, GboConfig, Key};
use godiva::mesh::StructuredBlock2D;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // new GBO(400): a database with a 400 MB budget (§3.3).
    let godiva = Gbo::with_config(GboConfig {
        mem_limit: 400 << 20,
        ..Default::default()
    });

    // --- Table 1: define field types and the "fluid" record type -------
    godiva.define_field("block id", FieldKind::Str, DeclaredSize::Known(11))?;
    godiva.define_field("time-step id", FieldKind::Str, DeclaredSize::Known(9))?;
    for array in ["x coordinates", "y coordinates", "pressure", "temperature"] {
        godiva.define_field(array, FieldKind::F64, DeclaredSize::Unknown)?;
    }
    godiva.define_record("fluid", 2)?; // two key fields
    godiva.insert_field("fluid", "block id", true)?;
    godiva.insert_field("fluid", "time-step id", true)?;
    for array in ["x coordinates", "y coordinates", "pressure", "temperature"] {
        godiva.insert_field("fluid", array, false)?;
    }
    godiva.commit_record_type("fluid")?;
    println!("record type 'fluid' committed (2 key fields + 4 arrays)");

    // --- Figure 2: one record instance ---------------------------------
    // A 100×100 structured block: 101 coordinates per axis (808 bytes),
    // 10 000 elements with two element-based variables (80 000 bytes).
    let block = StructuredBlock2D::uniform(100, 100, 1.0, 1.0);
    let record = godiva.new_record("fluid")?;
    record.set_str("block id", "block_0003")?;
    record.set_str("time-step id", "0.000075")?;
    record.set_f64("x coordinates", block.x.clone())?;
    record.set_f64("y coordinates", block.y.clone())?;
    record.set_f64(
        "pressure",
        block.sample_elem_field(|c| 101_325.0 * (1.0 + 0.05 * (8.0 * c[0]).sin() * c[1])),
    )?;
    record.set_f64(
        "temperature",
        block.sample_elem_field(|c| 300.0 + 2200.0 * (-3.0 * c[0]).exp()),
    )?;
    record.commit()?;

    for field in ["x coordinates", "pressure"] {
        let size = record.field(field)?.byte_len();
        println!("field '{field}': {size} bytes");
    }

    // --- The paper's example query --------------------------------------
    let keys = [Key::from("block_0003"), Key::from("0.000075")];
    let pressure = godiva.get_field_buffer("fluid", "pressure", &keys)?;
    let values = pressure.f64s()?;
    println!(
        "query answered: pressure buffer has {} values, p[0] = {:.1} Pa, max = {:.1} Pa",
        values.len(),
        values[0],
        values.iter().cloned().fold(f64::MIN, f64::max),
    );
    assert_eq!(values.len(), 10_000);

    let size = godiva.get_field_buffer_size("fluid", "pressure", &keys)?;
    assert_eq!(size, 80_000, "Figure 2's pressure buffer is 80 000 bytes");
    println!("getFieldBufferSize agrees with Figure 2: {size} bytes");

    let stats = godiva.stats();
    println!(
        "database: {} record(s) committed, {} bytes in buffers, {} queries answered",
        stats.records_committed, stats.mem_used, stats.queries
    );
    Ok(())
}
